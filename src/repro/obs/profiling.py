"""Real-resource profiling: what a run costs the *host*, not the simulator.

Everything else in ``repro.obs`` is keyed on simulated time. This module
measures the physical side — wall clock vs ``thread_time`` CPU per task
body, ``tracemalloc`` allocation deltas and peaks, and ``gc`` collection
counts with pause timing via ``gc.callbacks`` — the memory-churn /
GC-dominance picture Awan et al. report for in-memory analytics.

Profiles are opt-in (``--profile`` / ``REPRO_PROFILE``) and explicitly
**non-deterministic**: host timings vary run to run, so profile fields are
excluded from every identity comparison (``diff-runs`` thresholds, ledger
identity hashes). Attaching a profiler must never change simulated
results; probes only read clocks and allocator statistics.

Under threaded task execution (``REPRO_PHYSICAL_PARALLELISM > 1``)
``thread_time`` stays per-task-accurate (it is per-thread CPU time), but
``tracemalloc`` statistics are process-global, so per-task allocation
deltas and peaks are attributions, not isolates — documented in
``docs/observability.md``.
"""

from __future__ import annotations

import gc
import os
import threading
import time
import tracemalloc
from typing import Dict, Optional


def profiling_enabled(flag: bool = False) -> bool:
    """Is profiling requested, by flag or by ``REPRO_PROFILE``?"""
    if flag:
        return True
    return os.environ.get("REPRO_PROFILE", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


class _TaskProbe:
    """Context manager bracketing one task body's host cost."""

    __slots__ = ("_profiler", "_stage", "_wall0", "_cpu0", "_alloc0")

    def __init__(self, profiler: "ResourceProfiler", stage: str) -> None:
        self._profiler = profiler
        self._stage = stage

    def __enter__(self) -> "_TaskProbe":
        self._alloc0 = tracemalloc.get_traced_memory()[0]
        self._cpu0 = time.thread_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = time.perf_counter() - self._wall0
        cpu = time.thread_time() - self._cpu0
        current, peak = tracemalloc.get_traced_memory()
        alloc = current - self._alloc0
        self._profiler._record_task(self._stage, wall, cpu, alloc, peak)


class _NullProbe:
    """Stand-in when no profiler is attached; costs two no-op calls."""

    __slots__ = ()

    def __enter__(self) -> "_NullProbe":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_PROBE = _NullProbe()


class ResourceProfiler:
    """Sweep-scoped collector of host-resource samples.

    Lifecycle: ``start()`` once before the measured work (enables
    ``tracemalloc``, hooks ``gc.callbacks``, marks clocks), bracket task
    bodies with ``task_probe(stage)``, ``stop()`` after, then ``rollup()``
    for a JSON-ready summary aggregated per stage. Aggregation is
    lock-guarded because task bodies may run on pool threads.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: Dict[str, Dict[str, float]] = {}
        self._gc_collections = 0
        self._gc_pause_s = 0.0
        self._gc_max_pause_s = 0.0
        self._gc_t0: Optional[float] = None
        self._wall0: Optional[float] = None
        self._cpu0: Optional[float] = None
        self._wall_s = 0.0
        self._cpu_s = 0.0
        self._peak_bytes = 0
        self._running = False
        self._started_tracemalloc = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        gc.callbacks.append(self._on_gc)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        self._wall_s += time.perf_counter() - (self._wall0 or 0.0)
        self._cpu_s += time.process_time() - (self._cpu0 or 0.0)
        self._peak_bytes = max(
            self._peak_bytes, tracemalloc.get_traced_memory()[1]
        )
        try:
            gc.callbacks.remove(self._on_gc)
        except ValueError:
            pass
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def task_probe(self, stage: str):
        """A context manager timing one task body, attributed to ``stage``."""
        if not self._running:
            return NULL_PROBE
        return _TaskProbe(self, stage)

    def _record_task(
        self, stage: str, wall: float, cpu: float, alloc: int, peak: int
    ) -> None:
        with self._lock:
            agg = self._stages.get(stage)
            if agg is None:
                agg = self._stages[stage] = {
                    "tasks": 0,
                    "wall_s": 0.0,
                    "cpu_s": 0.0,
                    "alloc_bytes": 0,
                    "peak_bytes": 0,
                    "max_task_wall_s": 0.0,
                }
            agg["tasks"] += 1
            agg["wall_s"] += wall
            agg["cpu_s"] += cpu
            if alloc > 0:
                agg["alloc_bytes"] += alloc
            agg["peak_bytes"] = max(agg["peak_bytes"], peak)
            agg["max_task_wall_s"] = max(agg["max_task_wall_s"], wall)

    def _on_gc(self, phase: str, info: dict) -> None:
        if phase == "start":
            self._gc_t0 = time.perf_counter()
        elif phase == "stop":
            if self._gc_t0 is not None:
                pause = time.perf_counter() - self._gc_t0
                self._gc_t0 = None
                with self._lock:
                    self._gc_collections += 1
                    self._gc_pause_s += pause
                    self._gc_max_pause_s = max(self._gc_max_pause_s, pause)

    # ------------------------------------------------------------------
    # Aggregation / merge
    # ------------------------------------------------------------------

    def merge(self, rolled: dict) -> None:
        """Fold another profiler's :meth:`rollup` (a pool worker's) in."""
        with self._lock:
            for stage, incoming in rolled.get("stages", {}).items():
                agg = self._stages.get(stage)
                if agg is None:
                    agg = self._stages[stage] = {
                        "tasks": 0,
                        "wall_s": 0.0,
                        "cpu_s": 0.0,
                        "alloc_bytes": 0,
                        "peak_bytes": 0,
                        "max_task_wall_s": 0.0,
                    }
                agg["tasks"] += incoming.get("tasks", 0)
                agg["wall_s"] += incoming.get("wall_s", 0.0)
                agg["cpu_s"] += incoming.get("cpu_s", 0.0)
                agg["alloc_bytes"] += incoming.get("alloc_bytes", 0)
                agg["peak_bytes"] = max(
                    agg["peak_bytes"], incoming.get("peak_bytes", 0)
                )
                agg["max_task_wall_s"] = max(
                    agg["max_task_wall_s"], incoming.get("max_task_wall_s", 0.0)
                )
            host = rolled.get("host", {})
            self._wall_s += host.get("wall_s", 0.0)
            self._cpu_s += host.get("cpu_s", 0.0)
            self._peak_bytes = max(
                self._peak_bytes, host.get("tracemalloc_peak_bytes", 0)
            )
            gc_part = host.get("gc", {})
            self._gc_collections += gc_part.get("collections", 0)
            self._gc_pause_s += gc_part.get("pause_s", 0.0)
            self._gc_max_pause_s = max(
                self._gc_max_pause_s, gc_part.get("max_pause_s", 0.0)
            )

    def rollup(self) -> dict:
        """A JSON-ready summary: per-stage aggregates plus host totals."""
        with self._lock:
            stages = {
                stage: {
                    "tasks": agg["tasks"],
                    "wall_s": agg["wall_s"],
                    "cpu_s": agg["cpu_s"],
                    "alloc_bytes": agg["alloc_bytes"],
                    "peak_bytes": agg["peak_bytes"],
                    "max_task_wall_s": agg["max_task_wall_s"],
                }
                for stage, agg in sorted(self._stages.items())
            }
            wall = self._wall_s
            cpu = self._cpu_s
            if self._running:
                wall += time.perf_counter() - (self._wall0 or 0.0)
                cpu += time.process_time() - (self._cpu0 or 0.0)
            peak = self._peak_bytes
            if tracemalloc.is_tracing():
                peak = max(peak, tracemalloc.get_traced_memory()[1])
            return {
                "stages": stages,
                "host": {
                    "wall_s": wall,
                    "cpu_s": cpu,
                    "tracemalloc_peak_bytes": peak,
                    "gc": {
                        "collections": self._gc_collections,
                        "pause_s": self._gc_pause_s,
                        "max_pause_s": self._gc_max_pause_s,
                    },
                },
            }

"""``repro.obs`` — first-class observability for the simulated engine.

Two complementary instruments, both fed by the engine rather than
ad-hoc state scattered across schedulers:

* :class:`Tracer` + :class:`TraceEvent` — a span model (job / stage /
  task / task-phase / CHOPPER spans) with a Chrome-trace JSON exporter
  keyed on simulated time; open the output in ``chrome://tracing`` or
  Perfetto. See ``docs/observability.md``.
* :class:`MetricsRegistry` — counters, gauges, and histograms (shuffle
  local/remote bytes, speculation launches/wins, task retries, cache
  hits, queue waits) with JSON snapshot export.

Every :class:`~repro.engine.context.AnalyticsContext` owns an
:class:`Observability` hub. The metrics registry is always on (an
increment is a float add); tracing costs nothing until a tracer is
attached via ``ctx.obs.set_tracer(Tracer())``, because spans are only
constructed when one is listening.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.diagnostics import (
    RunDiff,
    detect_stragglers,
    diff_runs,
    gini,
    model_drift,
    partition_skew,
)
from repro.obs.export import to_otlp, to_prometheus, validate_prometheus
from repro.obs.ledger import LEDGER_VERSION, LedgerCollector, RunLedger
from repro.obs.log import DEBUG, ERROR, INFO, WARNING, EventLog
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiling import ResourceProfiler, profiling_enabled
from repro.obs.trace import TraceEvent, Tracer, save_chrome_trace, to_chrome


class Observability:
    """Per-context hub bundling the metrics registry and the tracer.

    ``bus`` is the context's listener bus; an attached tracer is
    registered there, so spans fan out exactly like every other
    execution event. A shared registry (and tracer) may be injected so
    multi-run pipelines (``ChopperRunner``) aggregate across contexts.
    """

    def __init__(
        self,
        bus: Any,
        metrics: Optional[MetricsRegistry] = None,
        nodes: Optional[Dict[str, int]] = None,
    ) -> None:
        self._bus = bus
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.nodes = dict(nodes or {})
        self.tracer: Optional[Tracer] = None
        self._span_listeners: List[Any] = []
        self.log: Optional[EventLog] = None
        self.profiler: Optional[ResourceProfiler] = None

    @property
    def tracing(self) -> bool:
        return self.tracer is not None

    @property
    def emitting(self) -> bool:
        """Is anyone listening for spans (tracer or e.g. a ledger collector)?

        Span construction is skipped entirely when nothing listens, so
        the engine's hot paths stay free when unobserved.
        """
        return self.tracer is not None or bool(self._span_listeners)

    def set_tracer(self, tracer: Optional[Tracer]) -> None:
        """Attach (or detach, with None) a tracer to the listener bus."""
        if self.tracer is not None:
            self._bus.remove(self.tracer)
        self.tracer = tracer
        if tracer is not None:
            tracer.declare_nodes(self.nodes)
            self._bus.add(tracer)

    def set_log(self, log: Optional[EventLog]) -> None:
        """Attach (or detach, with None) a structured event log."""
        self.log = log

    def set_profiler(self, profiler: Optional["ResourceProfiler"]) -> None:
        """Attach (or detach, with None) a real-resource profiler."""
        self.profiler = profiler

    @property
    def logging(self) -> bool:
        return self.log is not None

    def log_event(self, level: str, logger: str, event: str, **fields: Any) -> None:
        """Emit one structured log record; no-op when no log is attached.

        Every call site sits on the driver's serial event path (or is
        replayed there by the task-effects sink), so attaching a log
        never perturbs — and is never perturbed by — execution order.
        """
        if self.log is not None:
            self.log.emit(level, logger, event, **fields)

    def add_span_listener(self, listener: Any) -> None:
        """Register a listener that wants spans even with no tracer.

        The listener joins the bus like any other (all callbacks fire);
        additionally its presence turns span emission on.
        """
        self._bus.add(listener)
        self._span_listeners.append(listener)

    def remove_span_listener(self, listener: Any) -> None:
        self._bus.remove(listener)
        self._span_listeners.remove(listener)

    def span(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        node: Optional[str] = None,
        key: Optional[Tuple] = None,
        **args: Any,
    ) -> None:
        """Emit one span through the listener bus; no-op when unobserved."""
        if not self.emitting:
            return
        self._bus.span(
            TraceEvent(
                name=name, cat=cat, start=start, end=end,
                node=node, key=key, args=args,
            )
        )


__all__ = [
    "Counter",
    "DEBUG",
    "ERROR",
    "EventLog",
    "Gauge",
    "Histogram",
    "INFO",
    "LEDGER_VERSION",
    "LedgerCollector",
    "MetricsRegistry",
    "Observability",
    "ResourceProfiler",
    "RunDiff",
    "RunLedger",
    "TraceEvent",
    "Tracer",
    "WARNING",
    "detect_stragglers",
    "diff_runs",
    "gini",
    "model_drift",
    "partition_skew",
    "profiling_enabled",
    "save_chrome_trace",
    "to_chrome",
    "to_otlp",
    "to_prometheus",
    "validate_prometheus",
]

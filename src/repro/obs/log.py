"""Structured event log: JSONL records correlated with the run hierarchy.

The tracer answers "when did what overlap"; the metrics registry answers
"how much, total". This log answers the operator's question — *what
happened, in order, and to which task* — as newline-delimited JSON with a
monotone per-log sequence number and the correlation ids (run / job /
stage / task partition / attempt / node) threaded through the schedulers,
executor, shuffle manager, spill manager, AQE, and the CHOPPER runner.

Determinism contract: timestamps are **simulated** time (``ctx.sim.now``
via a bound clock) and every emit site sits on the driver's serial event
path (worker-thread task bodies defer their records through the task
effects sink, which replays them at the attempt's serial position), so a
run's log is byte-identical across serial, threaded, and process-pool
execution. Pool workers ship their records to the driver, which restamps
sequence numbers in deterministic merge order and labels each record with
the worker slot.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.common.errors import ConfigurationError

DEBUG = "DEBUG"
INFO = "INFO"
WARNING = "WARNING"
ERROR = "ERROR"

#: Severity order for filtering (``repro logs --level``).
LEVELS: Dict[str, int] = {DEBUG: 10, INFO: 20, WARNING: 30, ERROR: 40}


class EventLog:
    """An in-memory structured log with JSONL persistence.

    Records are plain dicts: ``seq`` (monotone int), ``t`` (simulated
    seconds), ``level``, ``logger`` (the emitting component), ``event``
    (a stable snake_case name), plus any bound correlation fields and the
    emit site's keyword fields. ``bind()`` installs fields (e.g. the
    ledger run id) carried by every subsequent record.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.records: List[dict] = []
        self._seq = 0
        self._clock: Callable[[], float] = clock if clock is not None else (
            lambda: 0.0
        )
        self._bound: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point timestamps at a context's simulated clock."""
        self._clock = clock

    def bind(self, **fields: Any) -> None:
        """Install correlation fields stamped on every later record."""
        for key, value in fields.items():
            if value is None:
                self._bound.pop(key, None)
            else:
                self._bound[key] = value

    def emit(self, level: str, logger: str, event: str, **fields: Any) -> None:
        if level not in LEVELS:
            raise ConfigurationError(
                f"unknown log level {level!r}; expected one of {sorted(LEVELS)}"
            )
        record = {
            "seq": self._seq,
            "t": float(self._clock()),
            "level": level,
            "logger": logger,
            "event": event,
        }
        for key, value in self._bound.items():
            record[key] = value
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        self._seq += 1
        self.records.append(record)

    def extend(self, records: Iterable[dict], worker: Optional[str] = None) -> None:
        """Fold shipped records (a pool worker's log) into this log.

        Sequence numbers are restamped into this log's monotone order —
        the shipped ones were private to the worker — and each record is
        labeled with the worker slot so merged logs stay attributable.
        """
        for shipped in records:
            record = dict(shipped)
            record["seq"] = self._seq
            if worker is not None:
                record["worker"] = worker
            self._seq += 1
            self.records.append(record)

    # ------------------------------------------------------------------
    # Persistence / filtering
    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Write JSONL, one sorted-key record per line."""
        with open(path, "w", encoding="utf-8") as fh:
            for record in self.records:
                fh.write(json.dumps(record, sort_keys=True))
                fh.write("\n")


def load_records(path: str) -> List[dict]:
    """Parse a JSONL log file; eager, so malformed lines fail up front."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
    return records


def filter_records(
    records: Iterable[dict],
    level: Optional[str] = None,
    stage: Optional[str] = None,
    node: Optional[str] = None,
    event: Optional[str] = None,
    tail: Optional[int] = None,
) -> List[dict]:
    """Apply the ``repro logs`` filters: min level, stage/node/event, tail."""
    if level is not None and level not in LEVELS:
        raise ConfigurationError(
            f"unknown log level {level!r}; expected one of {sorted(LEVELS)}"
        )
    floor = LEVELS[level] if level is not None else 0
    out = []
    for record in records:
        if LEVELS.get(record.get("level", INFO), 0) < floor:
            continue
        if stage is not None and record.get("stage") != stage:
            continue
        if node is not None and record.get("node") != node:
            continue
        if event is not None and record.get("event") != event:
            continue
        out.append(record)
    if tail is not None and tail >= 0:
        out = out[len(out) - tail:] if tail else []
    return out


def format_record(record: dict) -> str:
    """One human-scannable line per record (the ``repro logs`` output)."""
    known = ("seq", "t", "level", "logger", "event")
    head = (
        f"[{record.get('seq', '?'):>5}] "
        f"t={record.get('t', 0.0):>10.3f} "
        f"{record.get('level', '?'):<7} "
        f"{record.get('logger', '?')}: {record.get('event', '?')}"
    )
    rest = " ".join(
        f"{key}={record[key]}" for key in sorted(record) if key not in known
    )
    return f"{head} {rest}".rstrip()

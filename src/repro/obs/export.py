"""Metric exporters: Prometheus text exposition and OTLP-style JSON.

Both work on a :meth:`MetricsRegistry.snapshot` dict, so anything holding
a snapshot (a live registry, a saved ``--metrics`` JSON file) can export
without re-running. Output is deterministic: names and label sets arrive
sorted from the snapshot and are rendered in that order, so two identical
runs produce byte-identical expositions — which is what lets CI diff them.

Prometheus naming: instrument names like ``shuffle.write_bytes`` are
sanitized to ``shuffle_write_bytes`` (``[a-zA-Z0-9_:]`` only), counters
get the conventional ``_total`` suffix, and histograms are rendered as
*summaries* (the registry keeps exact samples, so the p50/p95/p99 in a
snapshot are real quantiles, not bucket interpolations).
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Tuple

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

_QUANTILES: Tuple[Tuple[str, str], ...] = (
    ("0.5", "p50"),
    ("0.95", "p95"),
    ("0.99", "p99"),
)


def sanitize_name(name: str) -> str:
    """Map an instrument name onto the Prometheus metric-name alphabet."""
    out = _NAME_SANITIZE.sub("_", name)
    if not out or not _NAME_OK.match(out):
        out = "_" + out
    return out


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: Dict[str, str], extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [(sanitize_name(k), str(v)) for k, v in sorted(labels.items())]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _fmt(value: Any) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def to_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot in Prometheus text exposition format."""
    lines: List[str] = []

    for name, series in snapshot.get("counters", {}).items():
        metric = sanitize_name(name)
        if not metric.endswith("_total"):
            metric += "_total"
        lines.append(f"# HELP {metric} Counter {name!r} from the repro registry.")
        lines.append(f"# TYPE {metric} counter")
        for entry in series:
            labels = _render_labels(entry.get("labels", {}))
            lines.append(f"{metric}{labels} {_fmt(entry['value'])}")

    for name, series in snapshot.get("gauges", {}).items():
        metric = sanitize_name(name)
        lines.append(f"# HELP {metric} Gauge {name!r} from the repro registry.")
        lines.append(f"# TYPE {metric} gauge")
        for entry in series:
            labels = _render_labels(entry.get("labels", {}))
            lines.append(f"{metric}{labels} {_fmt(entry['value'])}")

    for name, series in snapshot.get("histograms", {}).items():
        metric = sanitize_name(name)
        lines.append(f"# HELP {metric} Histogram {name!r} from the repro registry.")
        lines.append(f"# TYPE {metric} summary")
        for entry in series:
            base = entry.get("labels", {})
            for q, key in _QUANTILES:
                value = entry.get(key)
                if value is None:
                    continue
                labels = _render_labels(base, extra=("quantile", q))
                lines.append(f"{metric}{labels} {_fmt(value)}")
            labels = _render_labels(base)
            lines.append(f"{metric}_sum{labels} {_fmt(entry.get('sum', 0.0))}")
            lines.append(f"{metric}_count{labels} {_fmt(entry.get('count', 0))}")

    return "\n".join(lines) + ("\n" if lines else "")


def _otlp_attributes(labels: Dict[str, str]) -> List[dict]:
    return [
        {"key": key, "value": {"stringValue": str(value)}}
        for key, value in sorted(labels.items())
    ]


def to_otlp(snapshot: dict, time_unix_nano: int = 0) -> dict:
    """An OTLP-style (OpenTelemetry metrics data model) JSON dump.

    Counters become monotonic cumulative sums, gauges become gauges, and
    histograms become summary data points carrying the exact quantiles.
    ``time_unix_nano`` defaults to 0 so the dump itself stays
    deterministic; pass a real timestamp when feeding a collector.
    """
    metrics: List[dict] = []
    stamp = str(int(time_unix_nano))

    for name, series in snapshot.get("counters", {}).items():
        metrics.append({
            "name": name,
            "sum": {
                "aggregationTemporality": 2,  # CUMULATIVE
                "isMonotonic": True,
                "dataPoints": [
                    {
                        "attributes": _otlp_attributes(entry.get("labels", {})),
                        "timeUnixNano": stamp,
                        "asDouble": float(entry["value"]),
                    }
                    for entry in series
                ],
            },
        })

    for name, series in snapshot.get("gauges", {}).items():
        metrics.append({
            "name": name,
            "gauge": {
                "dataPoints": [
                    {
                        "attributes": _otlp_attributes(entry.get("labels", {})),
                        "timeUnixNano": stamp,
                        "asDouble": float(entry["value"]),
                    }
                    for entry in series
                ],
            },
        })

    for name, series in snapshot.get("histograms", {}).items():
        metrics.append({
            "name": name,
            "summary": {
                "dataPoints": [
                    {
                        "attributes": _otlp_attributes(entry.get("labels", {})),
                        "timeUnixNano": stamp,
                        "count": int(entry.get("count", 0)),
                        "sum": float(entry.get("sum", 0.0)),
                        "quantileValues": [
                            {"quantile": float(q), "value": float(entry[key])}
                            for q, key in _QUANTILES
                            if entry.get(key) is not None
                        ],
                    }
                    for entry in series
                ],
            },
        })

    return {
        "resourceMetrics": [
            {
                "resource": {
                    "attributes": [
                        {
                            "key": "service.name",
                            "value": {"stringValue": "repro"},
                        }
                    ]
                },
                "scopeMetrics": [
                    {"scope": {"name": "repro.obs"}, "metrics": metrics}
                ],
            }
        ]
    }


def save_otlp(snapshot: dict, path: str, time_unix_nano: int = 0) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_otlp(snapshot, time_unix_nano), fh, indent=2, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
# Validation (CI smoke)
# ----------------------------------------------------------------------

_TYPE_LINE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$"
)
_HELP_LINE = re.compile(r"^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$")
_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"          # metric name
    r"(\{((?:[a-zA-Z_][a-zA-Z0-9_]*="       # labels (optional)
    r'"(?:[^"\\\n]|\\\\|\\"|\\n)*",?)*)\})?'
    r" ([^ ]+)"                              # value
    r"( [0-9]+)?$"                           # optional timestamp
)
_SUFFIXES = ("_sum", "_count", "_bucket")


def validate_prometheus(text: str) -> int:
    """Strict line-by-line check of Prometheus text exposition format.

    Raises ``ValueError`` (with the offending line number) on malformed
    comments, metric names, label syntax, or non-float values, and when a
    sample's metric family was never ``# TYPE``-declared. Returns the
    number of sample lines, which callers assert is nonzero.
    """
    declared: set = set()
    samples = 0
    for lineno, line in enumerate(text.split("\n"), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE "):
                match = _TYPE_LINE.match(line)
                if match is None:
                    raise ValueError(f"line {lineno}: malformed TYPE comment")
                declared.add(match.group(1))
            elif line.startswith("# HELP "):
                if _HELP_LINE.match(line) is None:
                    raise ValueError(f"line {lineno}: malformed HELP comment")
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name, value = match.group(1), match.group(4)
        try:
            float(value)
        except ValueError:
            raise ValueError(
                f"line {lineno}: sample value {value!r} is not a float"
            ) from None
        family = name
        for suffix in _SUFFIXES:
            if name.endswith(suffix):
                family = name[: -len(suffix)]
                break
        if family not in declared:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no # TYPE declaration"
            )
        samples += 1
    return samples

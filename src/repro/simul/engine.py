"""The discrete-event simulation loop.

:class:`SimEngine` owns the virtual clock. Components schedule callbacks at
relative delays or absolute times; :meth:`SimEngine.run` drains the event
heap in deterministic ``(time, seq)`` order, advancing the clock to each
event's timestamp. There is no real-time sleeping anywhere — a multi-minute
"cluster run" completes in milliseconds of wall time.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.common.errors import SchedulingError
from repro.simul.events import Event


class SimEngine:
    """Deterministic event loop with a virtual clock."""

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._heap: list[Event] = []
        self._running: bool = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(time=time, seq=self._seq, fn=fn, args=args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def run(self, until: Optional[float] = None) -> float:
        """Drain events (optionally only up to time ``until``).

        Returns the clock value when the loop stops: the last event's time,
        or ``until`` if a horizon was given and reached.
        """
        if self._running:
            raise SchedulingError("SimEngine.run re-entered")
        self._running = True
        try:
            while self._heap:
                event = self._heap[0]
                if until is not None and event.time > until:
                    self._now = until
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                event.fire()
        finally:
            self._running = False
        return self._now

    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for e in self._heap if not e.cancelled)

    def reset(self) -> None:
        """Clear the clock and all pending events (e.g. between jobs)."""
        if self._running:
            raise SchedulingError("cannot reset a running SimEngine")
        self._now = 0.0
        self._seq = 0
        self._heap.clear()

"""Counted resources with FIFO queueing.

:class:`SlotPool` models a resource with ``capacity`` identical slots —
executor cores, primarily. Acquisition is callback-based: when a slot is
(or becomes) free, the waiter's callback fires at the current simulated
time. FIFO ordering keeps the simulation deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.common.errors import SchedulingError
from repro.simul.engine import SimEngine


class SlotPool:
    """A pool of ``capacity`` interchangeable slots over a :class:`SimEngine`."""

    def __init__(self, engine: SimEngine, capacity: int, name: str = "pool") -> None:
        if capacity < 1:
            raise SchedulingError(f"SlotPool {name!r} needs capacity >= 1, got {capacity}")
        self._engine = engine
        self._capacity = capacity
        self._in_use = 0
        self._waiters: deque[Callable[[], Any]] = deque()
        self.name = name

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def in_use(self) -> int:
        """Slots currently held."""
        return self._in_use

    @property
    def available(self) -> int:
        return self._capacity - self._in_use

    @property
    def queued(self) -> int:
        """Waiters not yet granted a slot."""
        return len(self._waiters)

    def acquire(self, on_granted: Callable[[], Any]) -> None:
        """Request a slot; ``on_granted`` fires when one is assigned.

        If a slot is free the grant is delivered via a zero-delay event
        (never synchronously) so acquisition order always matches event
        order, regardless of load.
        """
        self._waiters.append(on_granted)
        self._dispatch()

    def release(self) -> None:
        """Return a held slot to the pool, waking the next waiter if any."""
        if self._in_use <= 0:
            raise SchedulingError(f"SlotPool {self.name!r}: release without acquire")
        self._in_use -= 1
        self._dispatch()

    def _dispatch(self) -> None:
        while self._waiters and self._in_use < self._capacity:
            self._in_use += 1
            waiter = self._waiters.popleft()
            self._engine.schedule(0.0, waiter)

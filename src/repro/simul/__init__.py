"""Discrete-event simulation kernel.

A tiny, deterministic event-driven simulator: an event loop with a virtual
clock (:class:`SimEngine`), counted resources with FIFO queueing
(:class:`SlotPool`, a general-purpose primitive; the engine's task
scheduler does its own core accounting for locality-aware dispatch), and
time-series metric recording (:class:`MetricsRecorder`) used to
reproduce the paper's utilization figures (Figs. 11-14).

The engine layer (``repro.engine``) runs *real* computations but takes all
its timing from this kernel, which is what makes a 6-node-cluster paper
reproducible on one laptop core.
"""

from repro.simul.events import Event
from repro.simul.engine import SimEngine
from repro.simul.resources import SlotPool
from repro.simul.metrics import MetricsRecorder, TimeSeries

__all__ = ["Event", "SimEngine", "SlotPool", "MetricsRecorder", "TimeSeries"]

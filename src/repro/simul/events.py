"""Event objects for the discrete-event simulator.

Events order by ``(time, seq)``; ``seq`` is a monotonically increasing
tie-breaker assigned by the engine, which makes simulation runs fully
deterministic even when many events share a timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A scheduled callback in simulated time.

    Attributes:
        time: absolute simulated time at which the event fires.
        seq: engine-assigned tie-breaker; earlier-scheduled events with the
            same timestamp fire first.
        fn: the callback to invoke; compared fields exclude it.
        args: positional arguments passed to ``fn``.
        cancelled: set via :meth:`cancel`; cancelled events are skipped by
            the engine without invoking ``fn``.
    """

    time: float
    seq: int
    fn: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine drops it instead of firing it."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (engine-internal)."""
        self.fn(*self.args)

"""Time-series metric recording for the simulated cluster.

The paper's Figs. 11-14 plot dstat-style series — CPU %, memory %, packets
per second, disk transactions per second — sampled over the run. The
simulator produces the equivalent series from first principles:

* *interval* samples (``record_interval``): a quantity held over a span of
  simulated time, e.g. one busy core from task start to task end;
* *point* samples (``record_event``): an instantaneous quantity, e.g. the
  bytes of one shuffle fetch.

:meth:`MetricsRecorder.bucketize` folds samples into fixed-width buckets:
intervals contribute pro-rata (value x overlap / width gives a utilization
average), points contribute their value divided by the bucket width (a
rate).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigurationError


@dataclass
class TimeSeries:
    """A bucketized metric series.

    Attributes:
        times: bucket-start timestamps (seconds).
        values: bucket values (utilization average or per-second rate).
    """

    times: np.ndarray
    values: np.ndarray

    def mean(self) -> float:
        return float(self.values.mean()) if self.values.size else 0.0

    def peak(self) -> float:
        return float(self.values.max()) if self.values.size else 0.0

    def total(self, bucket_width: float) -> float:
        """Integral of the series (rate x width summed over buckets)."""
        return float(self.values.sum() * bucket_width)


@dataclass
class _IntervalSample:
    start: float
    end: float
    value: float


@dataclass
class MetricsRecorder:
    """Collects raw samples keyed by ``(series, node)`` during a run."""

    _intervals: Dict[Tuple[str, str], List[_IntervalSample]] = field(
        default_factory=lambda: defaultdict(list)
    )
    _points: Dict[Tuple[str, str], List[Tuple[float, float]]] = field(
        default_factory=lambda: defaultdict(list)
    )
    _horizon: float = 0.0

    def record_interval(
        self, series: str, node: str, start: float, end: float, value: float = 1.0
    ) -> None:
        """Record ``value`` held on ``node`` from ``start`` to ``end``."""
        if end < start:
            raise ConfigurationError(f"interval ends before it starts: {start}..{end}")
        self._intervals[(series, node)].append(_IntervalSample(start, end, value))
        self._horizon = max(self._horizon, end)

    def record_event(self, series: str, node: str, time: float, value: float) -> None:
        """Record an instantaneous ``value`` on ``node`` at ``time``."""
        self._points[(series, node)].append((time, value))
        self._horizon = max(self._horizon, time)

    @property
    def horizon(self) -> float:
        """Latest timestamp seen across all samples."""
        return self._horizon

    def nodes(self, series: str) -> List[str]:
        found = {node for (s, node) in self._intervals if s == series}
        found |= {node for (s, node) in self._points if s == series}
        return sorted(found)

    def bucketize(
        self,
        series: str,
        bucket_width: float,
        node: Optional[str] = None,
        end: Optional[float] = None,
    ) -> TimeSeries:
        """Fold a series into fixed-width buckets.

        With ``node=None`` the samples of all nodes are averaged (interval
        series) or summed (point series are summed then rated), matching
        the paper's "average of the statistics collected from the six
        nodes" presentation.
        """
        if bucket_width <= 0:
            raise ConfigurationError("bucket_width must be positive")
        horizon = end if end is not None else self._horizon
        n_buckets = max(1, int(np.ceil(horizon / bucket_width)) if horizon > 0 else 1)
        times = np.arange(n_buckets) * bucket_width

        wanted_nodes = [node] if node is not None else self.nodes(series)
        if not wanted_nodes:
            return TimeSeries(times=times, values=np.zeros(n_buckets))

        acc = np.zeros(n_buckets)
        for nd in wanted_nodes:
            acc += self._node_values(series, nd, bucket_width, n_buckets)
        if node is None and len(wanted_nodes) > 1:
            acc /= len(wanted_nodes)
        return TimeSeries(times=times, values=acc)

    def _node_values(
        self, series: str, node: str, bucket_width: float, n_buckets: int
    ) -> np.ndarray:
        values = np.zeros(n_buckets)
        for sample in self._intervals.get((series, node), ()):
            self._spread_interval(values, sample, bucket_width)
        for time, value in self._points.get((series, node), ()):
            idx = min(int(time / bucket_width), n_buckets - 1)
            values[idx] += value / bucket_width
        return values

    @staticmethod
    def _spread_interval(
        values: np.ndarray, sample: _IntervalSample, bucket_width: float
    ) -> None:
        n_buckets = values.shape[0]
        first = min(int(sample.start / bucket_width), n_buckets - 1)
        last = min(int(sample.end / bucket_width), n_buckets - 1)
        for idx in range(first, last + 1):
            lo = idx * bucket_width
            hi = lo + bucket_width
            overlap = min(sample.end, hi) - max(sample.start, lo)
            if overlap > 0:
                values[idx] += sample.value * overlap / bucket_width

    def reset(self) -> None:
        self._intervals.clear()
        self._points.clear()
        self._horizon = 0.0


def merge_series(series: Iterable[TimeSeries]) -> TimeSeries:
    """Element-wise sum of equally-bucketed series (pads to the longest)."""
    series = list(series)
    if not series:
        return TimeSeries(times=np.zeros(0), values=np.zeros(0))
    n = max(s.values.size for s in series)
    times = max(series, key=lambda s: s.times.size).times
    acc = np.zeros(n)
    for s in series:
        acc[: s.values.size] += s.values
    return TimeSeries(times=times, values=acc)

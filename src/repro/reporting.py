"""Plain-text run reports: stage tables, task Gantt charts, comparisons.

Everything renders to monospace text (no plotting dependencies), which
is what the benchmark harness saves and what a terminal user reads:

* :func:`stage_report` — one row per executed stage: timing, partitions,
  shuffle volume/remoteness, skew;
* :func:`gantt` — an ASCII timeline of task execution per node, the
  quickest way to *see* wave quantization, stragglers, and idle cores;
* :func:`utilization_report` — the Figs. 11-14 series summarized per
  node;
* :func:`comparison_report` — vanilla-vs-CHOPPER side by side, the
  Fig. 7/8 view.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.units import fmt_bytes, fmt_duration
from repro.engine.context import AnalyticsContext
from repro.engine.listener import StageStats


def _table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows
        else len(str(header[i]))
        for i in range(len(header))
    ]
    def fmt(row):
        return "  ".join(str(v).rjust(w) for v, w in zip(row, widths))
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def stage_report(stages: Sequence[StageStats], title: str = "stages") -> str:
    """Per-stage summary table for a run's executed stages."""
    rows = []
    for i, stage in enumerate(stages):
        rows.append([
            i,
            stage.kind,
            stage.num_partitions,
            fmt_duration(stage.duration),
            fmt_bytes(stage.input_bytes),
            fmt_bytes(stage.shuffle_bytes),
            fmt_bytes(stage.remote_shuffle_read),
            f"{stage.skew():.2f}",
        ])
    table = _table(
        ["stage", "kind", "P", "time", "input", "shuffle", "remote", "skew"],
        rows,
    )
    total = sum(s.duration for s in stages)
    return f"== {title} ==\n{table}\ntotal stage time: {fmt_duration(total)}"


def gantt(
    ctx: AnalyticsContext,
    width: int = 80,
    stages: Optional[Sequence[StageStats]] = None,
) -> str:
    """ASCII timeline: per node, the count of running tasks over time.

    Each column is one time bucket; the glyph encodes how many of the
    node's cores are busy (' ' idle, digits, '#' for >=10). Makes wave
    boundaries and stragglers visible at a glance.
    """
    stages = list(stages if stages is not None else ctx.stage_stats)
    tasks = [t for s in stages for t in s.tasks]
    if not tasks:
        return "(no tasks)"
    t0 = min(t.start for t in tasks)
    t1 = max(t.end for t in tasks)
    span = max(t1 - t0, 1e-9)
    step = span / width

    lines = [f"t = {fmt_duration(t0)} .. {fmt_duration(t1)} "
             f"({fmt_duration(span)} span, {fmt_duration(step)}/col)"]
    for worker in ctx.cluster.workers:
        counts = [0] * width
        for task in tasks:
            if task.node != worker.name:
                continue
            first = int((task.start - t0) / step)
            last = int((task.end - t0) / step)
            for col in range(max(first, 0), min(last + 1, width)):
                counts[col] += 1
        glyphs = "".join(
            " " if c == 0 else (str(c) if c < 10 else "#") for c in counts
        )
        lines.append(f"{worker.name:>8s} |{glyphs}|")
    return "\n".join(lines)


def utilization_report(ctx: AnalyticsContext, buckets: int = 40) -> str:
    """Per-node averages of the four dstat-style series (Figs. 11-14)."""
    horizon = max(ctx.now, 1e-9)
    bucket = horizon / buckets
    rows = []
    for worker in ctx.cluster.workers:
        cpu = ctx.metrics.bucketize("cpu", bucket, node=worker.name, end=horizon)
        mem = ctx.metrics.bucketize(
            "mem_working", bucket, node=worker.name, end=horizon
        )
        net = ctx.metrics.bucketize(
            "net_bytes", bucket, node=worker.name, end=horizon
        )
        disk = ctx.metrics.bucketize(
            "disk_transactions", bucket, node=worker.name, end=horizon
        )
        rows.append([
            worker.name,
            worker.cores,
            f"{cpu.mean() / worker.cores * 100:.1f}%",
            fmt_bytes(mem.mean()),
            f"{net.mean() / 1e6:.2f}",
            f"{disk.mean():.1f}",
        ])
    return _table(
        ["node", "cores", "cpu", "mem (avg)", "net MB/s", "disk tx/s"], rows
    )


def comparison_report(
    vanilla_stages: Sequence[StageStats],
    chopper_stages: Sequence[StageStats],
) -> str:
    """Side-by-side per-stage comparison (the Fig. 8 / Fig. 10 view)."""
    rows: List[List[str]] = []
    n = max(len(vanilla_stages), len(chopper_stages))
    for i in range(n):
        v = vanilla_stages[i] if i < len(vanilla_stages) else None
        c = chopper_stages[i] if i < len(chopper_stages) else None
        delta = ""
        if v and c and v.duration > 0:
            delta = f"{(1 - c.duration / v.duration) * 100:+.1f}%"
        rows.append([
            i,
            fmt_duration(v.duration) if v else "-",
            v.num_partitions if v else "-",
            fmt_duration(c.duration) if c else "-",
            c.num_partitions if c else "-",
            delta,
        ])
    v_total = sum(s.duration for s in vanilla_stages)
    c_total = sum(s.duration for s in chopper_stages)
    table = _table(
        ["stage", "vanilla", "P", "chopper", "P", "delta"], rows
    )
    overall = (1 - c_total / v_total) * 100 if v_total > 0 else 0.0
    return (
        f"{table}\n"
        f"totals: vanilla {fmt_duration(v_total)}, "
        f"chopper {fmt_duration(c_total)} ({overall:+.1f}%)"
    )

"""Plain-text run reports: stage tables, task Gantt charts, comparisons.

Everything renders to monospace text (no plotting dependencies), which
is what the benchmark harness saves and what a terminal user reads:

* :func:`stage_report` — one row per executed stage: timing, partitions,
  shuffle volume/remoteness, skew;
* :func:`gantt` — an ASCII timeline of task execution per node, the
  quickest way to *see* wave quantization, stragglers, and idle cores;
* :func:`utilization_report` — the Figs. 11-14 series summarized per
  node;
* :func:`comparison_report` — vanilla-vs-CHOPPER side by side, the
  Fig. 7/8 view.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.units import fmt_bytes, fmt_duration
from repro.engine.context import AnalyticsContext
from repro.engine.listener import StageStats


def _table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows
        else len(str(header[i]))
        for i in range(len(header))
    ]
    def fmt(row):
        return "  ".join(str(v).rjust(w) for v, w in zip(row, widths))
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def stage_report(stages: Sequence[StageStats], title: str = "stages") -> str:
    """Per-stage summary table for a run's executed stages."""
    rows = []
    for i, stage in enumerate(stages):
        rows.append([
            i,
            stage.kind,
            stage.num_partitions,
            fmt_duration(stage.duration),
            fmt_bytes(stage.input_bytes),
            fmt_bytes(stage.shuffle_bytes),
            fmt_bytes(stage.remote_shuffle_read),
            f"{stage.skew():.2f}",
        ])
    table = _table(
        ["stage", "kind", "P", "time", "input", "shuffle", "remote", "skew"],
        rows,
    )
    total = sum(s.duration for s in stages)
    return f"== {title} ==\n{table}\ntotal stage time: {fmt_duration(total)}"


def gantt(
    ctx: AnalyticsContext,
    width: int = 80,
    stages: Optional[Sequence[StageStats]] = None,
) -> str:
    """ASCII timeline: per node, the count of running tasks over time.

    Each column is one time bucket; the glyph encodes how many of the
    node's cores are busy (' ' idle, digits, '#' for >=10). Makes wave
    boundaries and stragglers visible at a glance.
    """
    stages = list(stages if stages is not None else ctx.stage_stats)
    tasks = [t for s in stages for t in s.tasks]
    if not tasks:
        return "(no tasks)"
    t0 = min(t.start for t in tasks)
    t1 = max(t.end for t in tasks)
    span = max(t1 - t0, 1e-9)
    step = span / width

    lines = [f"t = {fmt_duration(t0)} .. {fmt_duration(t1)} "
             f"({fmt_duration(span)} span, {fmt_duration(step)}/col)"]
    for worker in ctx.cluster.workers:
        counts = [0] * width
        for task in tasks:
            if task.node != worker.name:
                continue
            first = int((task.start - t0) / step)
            last = int((task.end - t0) / step)
            for col in range(max(first, 0), min(last + 1, width)):
                counts[col] += 1
        glyphs = "".join(
            " " if c == 0 else (str(c) if c < 10 else "#") for c in counts
        )
        lines.append(f"{worker.name:>8s} |{glyphs}|")
    return "\n".join(lines)


def utilization_report(ctx: AnalyticsContext, buckets: int = 40) -> str:
    """Per-node averages of the four dstat-style series (Figs. 11-14)."""
    horizon = max(ctx.now, 1e-9)
    bucket = horizon / buckets
    rows = []
    for worker in ctx.cluster.workers:
        cpu = ctx.metrics.bucketize("cpu", bucket, node=worker.name, end=horizon)
        mem = ctx.metrics.bucketize(
            "mem_working", bucket, node=worker.name, end=horizon
        )
        net = ctx.metrics.bucketize(
            "net_bytes", bucket, node=worker.name, end=horizon
        )
        disk = ctx.metrics.bucketize(
            "disk_transactions", bucket, node=worker.name, end=horizon
        )
        rows.append([
            worker.name,
            worker.cores,
            f"{cpu.mean() / worker.cores * 100:.1f}%",
            fmt_bytes(mem.mean()),
            f"{net.mean() / 1e6:.2f}",
            f"{disk.mean():.1f}",
        ])
    return _table(
        ["node", "cores", "cpu", "mem (avg)", "net MB/s", "disk tx/s"], rows
    )


def comparison_report(
    vanilla_stages: Sequence[StageStats],
    chopper_stages: Sequence[StageStats],
) -> str:
    """Side-by-side per-stage comparison (the Fig. 8 / Fig. 10 view)."""
    rows: List[List[str]] = []
    n = max(len(vanilla_stages), len(chopper_stages))
    for i in range(n):
        v = vanilla_stages[i] if i < len(vanilla_stages) else None
        c = chopper_stages[i] if i < len(chopper_stages) else None
        delta = ""
        if v and c and v.duration > 0:
            delta = f"{(1 - c.duration / v.duration) * 100:+.1f}%"
        rows.append([
            i,
            fmt_duration(v.duration) if v else "-",
            v.num_partitions if v else "-",
            fmt_duration(c.duration) if c else "-",
            c.num_partitions if c else "-",
            delta,
        ])
    v_total = sum(s.duration for s in vanilla_stages)
    c_total = sum(s.duration for s in chopper_stages)
    table = _table(
        ["stage", "vanilla", "P", "chopper", "P", "delta"], rows
    )
    overall = (1 - c_total / v_total) * 100 if v_total > 0 else 0.0
    return (
        f"{table}\n"
        f"totals: vanilla {fmt_duration(v_total)}, "
        f"chopper {fmt_duration(c_total)} ({overall:+.1f}%)"
    )


# ----------------------------------------------------------------------
# Self-contained HTML run report (ledger entries)
# ----------------------------------------------------------------------

_HTML_STYLE = """
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --axis: #c3c2b7;
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --critical: #d03b3b;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page);
  color: var(--text-primary);
  margin: 0;
  padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #2c2c2a;
    --axis: #383835;
    --series-1: #3987e5;
    --series-2: #d95926;
    --critical: #d03b3b;
  }
}
.viz-root section {
  background: var(--surface-1);
  border: 1px solid var(--grid);
  border-radius: 8px;
  padding: 16px 20px;
  margin: 0 0 16px 0;
  max-width: 980px;
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px 0; }
.viz-root h2 { font-size: 15px; margin: 0 0 10px 0; }
.viz-root p.sub { color: var(--text-secondary); margin: 0 0 12px 0; font-size: 13px; }
.viz-root table { border-collapse: collapse; font-size: 13px; width: 100%; }
.viz-root th {
  text-align: left; color: var(--text-secondary); font-weight: 600;
  border-bottom: 1px solid var(--axis); padding: 4px 10px 4px 0;
}
.viz-root td {
  border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0;
  font-variant-numeric: tabular-nums;
}
.viz-root .flag { color: var(--critical); font-weight: 600; }
.viz-root .ok { color: var(--text-secondary); }
.viz-root .legend { font-size: 12px; color: var(--text-secondary); margin: 6px 0 0 0; }
.viz-root .swatch {
  display: inline-block; width: 10px; height: 10px; border-radius: 2px;
  margin: 0 4px 0 12px; vertical-align: baseline;
}
.viz-root svg text { fill: var(--text-secondary); font-size: 11px; }
.viz-root svg .lab { fill: var(--text-primary); }
"""


def _esc(value: object) -> str:
    import html as _html

    return _html.escape(str(value))


def _stage_color(kind: str) -> str:
    return "var(--series-1)" if kind == "shuffle_map" else "var(--series-2)"


def _waterfall_svg(entry: dict) -> str:
    """Stage waterfall: one bar per stage run on the simulated timeline."""
    stages = entry.get("stages", [])
    if not stages:
        return "<p class='sub'>no stages recorded</p>"
    horizon = max(
        [s["end"] for s in stages] + [entry.get("wall_clock", 0.0), 1e-9]
    )
    label_w, row_h, bar_h, top = 230, 22, 14, 18
    plot_w = 660
    width = label_w + plot_w + 20
    height = top + row_h * len(stages) + 28

    def x(t: float) -> float:
        return label_w + t / horizon * plot_w

    parts = [
        f"<svg viewBox='0 0 {width} {height}' width='100%' "
        f"role='img' aria-label='stage waterfall'>"
    ]
    # Time gridlines (quarters of the horizon).
    for i in range(5):
        t = horizon * i / 4
        gx = x(t)
        parts.append(
            f"<line x1='{gx:.1f}' y1='{top}' x2='{gx:.1f}' "
            f"y2='{height - 24}' stroke='var(--grid)' stroke-width='1'/>"
            f"<text x='{gx:.1f}' y='{height - 10}' "
            f"text-anchor='middle'>{fmt_duration(t)}</text>"
        )
    for i, s in enumerate(stages):
        y = top + i * row_h
        bx, bw = x(s["start"]), max(x(s["end"]) - x(s["start"]), 2.0)
        name = s["name"]
        if s.get("attempt", 0):
            name += f" (retry {s['attempt']})"
        label = name if len(name) <= 34 else name[:33] + "…"
        tip = (
            f"{name}: {fmt_duration(s['duration'])}, P={s['num_partitions']},"
            f" shuffle r/w {fmt_bytes(s['shuffle_read_bytes'])}/"
            f"{fmt_bytes(s['shuffle_write_bytes'])}"
        )
        parts.append(
            f"<text class='lab' x='{label_w - 8}' y='{y + bar_h - 2}' "
            f"text-anchor='end'>{_esc(label)}</text>"
            f"<rect x='{bx:.1f}' y='{y}' width='{bw:.1f}' height='{bar_h}' "
            f"rx='4' fill='{_stage_color(s['kind'])}'>"
            f"<title>{_esc(tip)}</title></rect>"
        )
    parts.append("</svg>")
    parts.append(
        "<p class='legend'><span class='swatch' "
        "style='background:var(--series-1)'></span>shuffle-map stage"
        "<span class='swatch' style='background:var(--series-2)'></span>"
        "result stage</p>"
    )
    return "".join(parts)


def _scatter_svg(rows: Sequence[dict]) -> str:
    """Predicted-vs-actual stage-time scatter with a y=x reference line."""
    size, margin = 320, 44
    lim = max(
        [max(r["predicted_time"], r["actual_time"]) for r in rows] + [1e-9]
    ) * 1.08

    def sx(v: float) -> float:
        return margin + v / lim * (size - 2 * margin)

    def sy(v: float) -> float:
        return size - margin - v / lim * (size - 2 * margin)

    parts = [
        f"<svg viewBox='0 0 {size} {size}' width='{size}' role='img' "
        f"aria-label='predicted vs actual stage time'>"
    ]
    for i in range(5):
        v = lim * i / 4
        parts.append(
            f"<line x1='{sx(0):.1f}' y1='{sy(v):.1f}' x2='{sx(lim):.1f}' "
            f"y2='{sy(v):.1f}' stroke='var(--grid)'/>"
            f"<text x='{sx(0) - 6:.1f}' y='{sy(v) + 4:.1f}' "
            f"text-anchor='end'>{fmt_duration(v)}</text>"
            f"<text x='{sx(v):.1f}' y='{size - margin + 16:.1f}' "
            f"text-anchor='middle'>{fmt_duration(v)}</text>"
        )
    parts.append(
        f"<line x1='{sx(0):.1f}' y1='{sy(0):.1f}' x2='{sx(lim):.1f}' "
        f"y2='{sy(lim):.1f}' stroke='var(--axis)' stroke-dasharray='4 3'/>"
    )
    for r in rows:
        tip = (
            f"{r['signature'][:16]} ({r['partitioner']}, P={r['P']}): "
            f"predicted {fmt_duration(r['predicted_time'])}, "
            f"actual {fmt_duration(r['actual_time'])}"
        )
        parts.append(
            f"<circle cx='{sx(r['predicted_time']):.1f}' "
            f"cy='{sy(r['actual_time']):.1f}' r='5' fill='var(--series-1)' "
            f"stroke='var(--surface-1)' stroke-width='2'>"
            f"<title>{_esc(tip)}</title></circle>"
        )
    parts.append(
        f"<text x='{size / 2:.0f}' y='{size - 6}' text-anchor='middle'>"
        f"predicted stage time</text>"
        f"<text x='12' y='{size / 2:.0f}' text-anchor='middle' "
        f"transform='rotate(-90 12 {size / 2:.0f})'>actual stage time</text>"
        "</svg>"
    )
    return "".join(parts)


def _bars_svg(values: Sequence[float], width: int = 160, height: int = 28) -> str:
    """Tiny inline bar chart of a per-partition byte histogram."""
    if not values:
        return "<span class='sub'>—</span>"
    peak = max(values) or 1.0
    n = len(values)
    bw = width / n
    bars = "".join(
        f"<rect x='{i * bw:.1f}' y='{height - height * v / peak:.1f}' "
        f"width='{max(bw - 0.5, 0.5):.1f}' "
        f"height='{height * v / peak:.1f}' fill='#4a90d9'/>"
        for i, v in enumerate(values)
    )
    return (
        f"<svg width='{width}' height='{height}' "
        f"viewBox='0 0 {width} {height}'>{bars}</svg>"
    )


def _aqe_detail(event: dict) -> str:
    """One-line decision summary of an ``aqe.*`` ledger event."""
    if event.get("event") == "aqe-switch":
        return (
            f"{event.get('from_kind', '?')} → {event.get('to_kind', '?')} "
            f"(shuffle {event.get('shuffle_id', '?')})"
        )
    return (
        f"{event.get('original_partitions', '?')} → "
        f"{event.get('adapted_partitions', '?')} tasks "
        f"({event.get('coalesced', 0)} coalesced, "
        f"{event.get('split', 0)} split)"
    )


def html_report(entry: dict) -> str:
    """One ledger entry rendered as a self-contained HTML page.

    Sections: run summary, stage waterfall, skew and straggler callouts,
    predicted-vs-actual model scatter, adaptive-execution decisions
    (predicted vs adapted partition histograms), chaos events, and the
    real host-resource profile (``--profile`` runs). No external assets,
    so the file can be archived as a CI artifact and opened anywhere.
    """
    from repro.obs.diagnostics import detect_stragglers, partition_skew

    skew = partition_skew(entry)
    stragglers = detect_stragglers(entry)
    attempts = entry.get("task_attempts", {})
    shuffle = entry.get("shuffle", {})

    out: List[str] = [
        "<!DOCTYPE html><html lang='en'><head><meta charset='utf-8'>",
        f"<title>repro run report — {_esc(entry.get('run_id', '?'))}"
        "</title>",
        f"<style>{_HTML_STYLE}</style></head><body class='viz-root'>",
        "<section><h1>Run report: "
        f"{_esc(entry.get('run_id', '?'))}</h1>",
        "<p class='sub'>workload "
        f"<b>{_esc(entry.get('workload', '?'))}</b>"
        f" · label {_esc(entry.get('label', '?'))}"
        f" · scale {_esc(entry.get('scale', 1.0))}"
        f" · wall clock {fmt_duration(entry.get('wall_clock', 0.0))}"
        f" · {len(entry.get('stages', []))} stage runs"
        f" · shuffle local {fmt_bytes(shuffle.get('local_bytes', 0.0))}"
        f" / remote {fmt_bytes(shuffle.get('remote_bytes', 0.0))}"
        f" / written {fmt_bytes(shuffle.get('write_bytes', 0.0))}</p>",
        "<p class='sub'>task attempts: "
        + (
            ", ".join(f"{_esc(k)} {v}" for k, v in attempts.items())
            or "none recorded"
        )
        + "</p></section>",
        "<section><h2>Stage waterfall</h2>",
        _waterfall_svg(entry),
        "</section>",
    ]

    out.append("<section><h2>Partition skew</h2>")
    flagged = [f for f in skew if f.flagged]
    if flagged:
        rows = "".join(
            f"<tr><td>{_esc(f.name)}</td><td>{_esc(f.metric)}</td>"
            f"<td>{f.max_mean:.2f}</td><td>{f.gini:.3f}</td><td>{f.n}</td>"
            "<td class='flag'>⚠ skewed</td></tr>"
            for f in flagged
        )
        out.append(
            "<p class='sub'>distributions whose max/mean or Gini "
            "coefficient exceeded the skew thresholds</p>"
            "<table><tr><th>stage</th><th>distribution</th><th>max/mean"
            "</th><th>Gini</th><th>n</th><th></th></tr>"
            f"{rows}</table>"
        )
    else:
        out.append(
            "<p class='sub ok'>no stage exceeded the skew thresholds"
            f" ({len(skew)} distributions checked)</p>"
        )
    out.append("</section>")

    out.append("<section><h2>Stragglers</h2>")
    if stragglers:
        rows = "".join(
            f"<tr><td>{_esc(f.name)}</td>"
            f"<td>{fmt_duration(f.p50)}</td><td>{fmt_duration(f.p95)}</td>"
            f"<td>{fmt_duration(f.p99)}</td>"
            f"<td class='flag'>{len(f.outliers)}</td>"
            f"<td>{_esc(f.outliers[0]['node'])} task "
            f"{f.outliers[0]['task_index']} at "
            f"{fmt_duration(f.outliers[0]['duration'])}</td></tr>"
            for f in stragglers
        )
        out.append(
            "<p class='sub'>tasks slower than 2× the stage median "
            "and beyond its p95</p>"
            "<table><tr><th>stage</th><th>p50</th><th>p95</th><th>p99</th>"
            "<th>outliers</th><th>worst</th></tr>"
            f"{rows}</table>"
        )
    else:
        out.append("<p class='sub ok'>no straggler tasks detected</p>")
    out.append("</section>")

    eval_rows = (entry.get("model_eval") or {}).get("per_stage", [])
    out.append("<section><h2>Cost model: predicted vs actual</h2>")
    if eval_rows:
        out.append(
            "<p class='sub'>each mark is one stage run; the dashed line "
            "is a perfect prediction</p>"
        )
        out.append(_scatter_svg(eval_rows))
        table_rows = "".join(
            f"<tr><td>{_esc(r['signature'][:20])}</td>"
            f"<td>{_esc(r['partitioner'])}</td><td>{r['P']}</td>"
            f"<td>{fmt_duration(r['predicted_time'])}</td>"
            f"<td>{fmt_duration(r['actual_time'])}</td>"
            f"<td>{r['r2_time']:.3f}</td>"
            f"<td>{fmt_bytes(r['predicted_shuffle'])}</td>"
            f"<td>{fmt_bytes(r['actual_shuffle'])}</td>"
            f"<td>{r['r2_shuffle']:.3f}</td></tr>"
            for r in eval_rows
        )
        out.append(
            "<table><tr><th>stage</th><th>kind</th><th>P</th>"
            "<th>pred t</th><th>actual t</th><th>R² t</th>"
            "<th>pred shuffle</th><th>actual shuffle</th>"
            "<th>R² s</th></tr>"
            f"{table_rows}</table>"
        )
    else:
        out.append(
            "<p class='sub ok'>no trained cost model covered this run "
            "(profile + train first)</p>"
        )
    out.append("</section>")

    aqe = entry.get("aqe_events", [])
    out.append("<section><h2>Adaptive execution</h2>")
    if aqe:
        out.append(
            "<p class='sub'>reduce sides re-planned at runtime from "
            "measured map-output sizes; bars show the statically "
            "predicted vs adapted per-partition byte histograms</p>"
        )
        rows = "".join(
            f"<tr><td>{fmt_duration(e.get('t', 0.0))}</td>"
            f"<td>{_esc(e.get('event', '?'))}</td>"
            f"<td>{_esc(e.get('stage', '?'))}</td>"
            f"<td>{_esc(_aqe_detail(e))}</td>"
            f"<td>{e.get('gini_before', 0.0):.3f} → "
            f"{e.get('gini_after', 0.0):.3f}</td>"
            f"<td>{_bars_svg(e.get('before', []))}</td>"
            f"<td>{_bars_svg(e.get('after', []))}</td></tr>"
            for e in aqe
        )
        out.append(
            "<table><tr><th>t</th><th>event</th><th>stage</th>"
            "<th>decision</th><th>Gini</th><th>predicted</th>"
            "<th>adapted</th></tr>"
            f"{rows}</table>"
        )
    else:
        out.append(
            "<p class='sub ok'>no runtime re-planning "
            "(AQE off, or the measured sizes asked for no change)</p>"
        )
    out.append("</section>")

    chaos = entry.get("chaos_events", [])
    out.append("<section><h2>Chaos events</h2>")
    if chaos:
        rows = "".join(
            f"<tr><td>{fmt_duration(e.get('t', 0.0))}</td>"
            f"<td>{_esc(e.get('event', '?'))}</td>"
            f"<td>{_esc(', '.join(f'{k}={v}' for k, v in sorted(e.items()) if k not in ('t', 'event')))}"
            "</td></tr>"
            for e in chaos
        )
        out.append(
            "<table><tr><th>t</th><th>event</th><th>detail</th></tr>"
            f"{rows}</table>"
        )
    else:
        out.append("<p class='sub ok'>none — the run saw no failures</p>")
    out.append("</section>")

    profile = entry.get("profile")
    out.append("<section><h2>Resource profile</h2>")
    if profile:
        host = profile.get("host", {})
        gc_info = host.get("gc", {})
        out.append(
            "<p class='sub'>real host cost of this run — wall clock and "
            "allocator measurements, not simulated time (non-"
            "deterministic; excluded from identity checks): "
            f"wall {host.get('wall_s', 0.0):.3f}s"
            f" · cpu {host.get('cpu_s', 0.0):.3f}s"
            f" · tracemalloc peak "
            f"{fmt_bytes(host.get('tracemalloc_peak_bytes', 0))}"
            f" · gc {gc_info.get('collections', 0)} collections"
            f" ({gc_info.get('pause_s', 0.0) * 1e3:.1f} ms paused, "
            f"max {gc_info.get('max_pause_s', 0.0) * 1e3:.2f} ms)</p>"
        )
        stages = profile.get("stages", {})
        if stages:
            rows = "".join(
                f"<tr><td>{_esc(name)}</td><td>{agg.get('tasks', 0)}</td>"
                f"<td>{agg.get('wall_s', 0.0) * 1e3:.1f} ms</td>"
                f"<td>{agg.get('cpu_s', 0.0) * 1e3:.1f} ms</td>"
                f"<td>{fmt_bytes(agg.get('alloc_bytes', 0))}</td>"
                f"<td>{fmt_bytes(agg.get('peak_bytes', 0))}</td>"
                f"<td>{agg.get('max_task_wall_s', 0.0) * 1e3:.2f} ms</td>"
                "</tr>"
                for name, agg in stages.items()
            )
            out.append(
                "<table><tr><th>stage</th><th>tasks</th><th>wall</th>"
                "<th>cpu</th><th>alloc</th><th>peak</th>"
                "<th>max task</th></tr>"
                f"{rows}</table>"
            )
    else:
        out.append(
            "<p class='sub ok'>not profiled — run with --profile or "
            "REPRO_PROFILE=1 to measure host CPU, allocations, and GC "
            "pauses</p>"
        )
    out.append("</section></body></html>")
    return "".join(out)

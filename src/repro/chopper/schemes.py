"""Partition schemes and their deferred, shareable resolution.

A :class:`PartitionScheme` is the (partitioner kind, partition count)
tuple a CHOPPER config entry prescribes for a stage (the paper's Fig. 6
file format). A :class:`SchemeRef` wraps a scheme for *runtime*
resolution:

* hash schemes resolve immediately and cheaply;
* range schemes must sample real keys of the data being shuffled, so they
  resolve lazily — right before the map stage that writes the shuffle
  launches — and charge a simulated sampling delay, like Spark's range
  sketch pass.

One SchemeRef instance can be **shared** by several shuffle dependencies
(a co-partition group from Algorithm 3): the first resolution builds the
partitioner, later ones reuse the exact object, so the group's range
bounds are identical and partitioner equality holds — which is what lets
downstream joins read them co-partitioned. (Sampling only the first
side's keys mirrors the paper's §III-B caveat that a range scheme tuned
on one RDD can skew another.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.engine.partitioner import HashPartitioner, Partitioner, RangePartitioner
from repro.engine.task import probe_context

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import AnalyticsContext
    from repro.engine.stage import Stage

HASH = "hash"
RANGE = "range"
_KINDS = (HASH, RANGE)


@dataclass(frozen=True)
class PartitionScheme:
    """One config tuple: partitioner kind + number of partitions."""

    kind: str
    num_partitions: int

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(f"unknown partitioner kind {self.kind!r}")
        if self.num_partitions < 1:
            raise ConfigurationError("num_partitions must be >= 1")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "num_partitions": self.num_partitions}

    @classmethod
    def from_dict(cls, payload: dict) -> "PartitionScheme":
        return cls(kind=payload["kind"], num_partitions=int(payload["num_partitions"]))


class SchemeRef:
    """A scheme pending resolution into a concrete partitioner.

    Attach to ``ShuffleDependency.pending_scheme``; the DAGScheduler calls
    :meth:`resolve` before the writing map stage runs.
    """

    def __init__(self, scheme: PartitionScheme, group: Optional[str] = None) -> None:
        self.scheme = scheme
        self.group = group  # co-partition group label, for diagnostics
        self._built: Optional[Partitioner] = None

    @property
    def resolved(self) -> bool:
        return self._built is not None

    @property
    def partitioner(self) -> Optional[Partitioner]:
        return self._built

    def resolve_eager(self) -> Optional[Partitioner]:
        """Resolve without data access; only possible for hash schemes."""
        if self._built is None and self.scheme.kind == HASH:
            self._built = HashPartitioner(self.scheme.num_partitions)
        return self._built

    def resolve(
        self, ctx: "AnalyticsContext", map_stage: "Stage"
    ) -> Tuple[Partitioner, float]:
        """Build (or reuse) the partitioner; returns (partitioner, delay).

        ``delay`` is the simulated driver-side cost of the sampling pass —
        zero for hash schemes or already-resolved refs.
        """
        if self._built is not None:
            return self._built, 0.0
        if self.scheme.kind == HASH:
            self._built = HashPartitioner(self.scheme.num_partitions)
            return self._built, 0.0
        keys, sampled_partitions = self._sample_stage_keys(ctx, map_stage)
        self._built = RangePartitioner.from_sample(
            keys, self.scheme.num_partitions, seed=ctx.conf.seed
        )
        delay = (
            ctx.conf.range_sampling_base_delay
            + ctx.conf.range_sampling_per_partition_delay * sampled_partitions
        )
        return self._built, delay

    @staticmethod
    def _sample_stage_keys(
        ctx: "AnalyticsContext", map_stage: "Stage", max_partitions: int = 4
    ) -> Tuple[List, int]:
        """Physically evaluate a few map-input partitions and pull keys.

        The map stage's parents have completed by resolution time, so its
        pipeline is computable; probe contexts never cache and are never
        charged to the simulated clock (the explicit delay covers it).
        """
        dep = map_stage.shuffle_dep
        assert dep is not None, "resolve() called on a non-map stage"
        rdd = map_stage.rdd
        n = min(max_partitions, rdd.num_partitions)
        per_part = ctx.conf.range_sample_per_partition
        keys: List = []
        for split in range(n):
            records = rdd.materialize(split, probe_context())
            if not records:
                continue
            stride = max(1, len(records) // per_part)
            keys.extend(dep.key_fn(r) for r in records[::stride][:per_part])
        return keys, n

    def __repr__(self) -> str:
        state = "resolved" if self.resolved else "pending"
        return f"SchemeRef({self.scheme.kind},{self.scheme.num_partitions},{state})"

"""Stage performance models — the paper's Equations 1 and 2.

For every (stage signature, partitioner kind) CHOPPER fits two surrogate
curves over input size ``D`` and partition count ``P``:

    t_exe     = a1 D^3 + b1 D^2 + c1 D + d1 sqrt(D)
              + e1 P^3 + f1 P^2 + g1 P + h1 sqrt(P)          (Eq. 1)

    s_shuffle = a2 D^3 + b2 D^2 + c2 D + d2 sqrt(D)
              + e2 P^3 + f2 P^2 + g2 P + h2 sqrt(P)          (Eq. 2)

Implementation notes:

* inputs are scaled by reference magnitudes (``d_ref``, ``p_ref``) before
  the polynomial expansion — D is ~1e10 bytes, so raw cubes would destroy
  the least-squares conditioning;
* coefficients may be negative (time routinely *decreases* with P over a
  range — the paper's basis has no other way to express that), so
  predictions are clipped at zero and a tiny ridge term keeps the fit
  stable when samples are few;
* two implementation choices beyond the paper's text (see DESIGN.md):
  an **intercept** column, and fitting in **log space** (the basis
  predicts ``log t`` / ``log s``; predictions exponentiate). Stage-time
  curves often fall like 1/P and span orders of magnitude: a linear
  least-squares fit either overshoots the tail below zero (degenerate
  Eq. 4 argmin on the clipped plateau) or, if relative-weighted, ignores
  the expensive low-P spike the optimizer most needs to avoid. The
  multiplicative fit does neither and is positive by construction;
* the observed (D, P) envelope is stored; the optimizer searches P inside
  it, because cubic extrapolation outside the data is meaningless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.common.errors import ModelError
from repro.chopper.stats import StageObservation

BASIS_NAMES: Tuple[str, ...] = (
    "D^3", "D^2", "D", "sqrt(D)", "P^3", "P^2", "P", "sqrt(P)", "1",
)
N_TERMS = len(BASIS_NAMES)
_RIDGE = 1e-8
# Floors for the log-space targets and a cap on predicted log values
# (exp(40) seconds is ~10^9 years: anything past it is "infinitely bad").
_TIME_FLOOR = 1e-3
_BYTES_FLOOR = 1.0
_LOG_CAP = 40.0


def design_matrix(
    d: np.ndarray, p: np.ndarray, d_ref: float, p_ref: float
) -> np.ndarray:
    """The Eq. 1-2 basis (plus intercept) on reference-scaled inputs."""
    ds = np.asarray(d, dtype=float) / d_ref
    ps = np.asarray(p, dtype=float) / p_ref
    return np.column_stack(
        [
            ds**3, ds**2, ds, np.sqrt(ds),
            ps**3, ps**2, ps, np.sqrt(ps),
            np.ones_like(ds),
        ]
    )


@dataclass
class StagePerfModel:
    """Fitted Eq. 1 (time) and Eq. 2 (shuffle) for one stage+partitioner."""

    coef_time: np.ndarray
    coef_shuffle: np.ndarray
    d_ref: float
    p_ref: float
    d_range: Tuple[float, float]
    p_range: Tuple[int, int]
    n_samples: int

    # -- fitting --------------------------------------------------------

    @classmethod
    def fit(cls, observations: Iterable[StageObservation]) -> "StagePerfModel":
        obs = list(observations)
        if len(obs) < 2:
            raise ModelError(
                f"need at least 2 observations to fit a stage model, got {len(obs)}"
            )
        d = np.array([max(o.input_bytes, 1.0) for o in obs])
        p = np.array([float(o.num_partitions) for o in obs])
        t = np.array([o.duration for o in obs])
        s = np.array([o.shuffle_bytes for o in obs])
        d_ref = float(d.max())
        p_ref = float(p.max())
        X = design_matrix(d, p, d_ref, p_ref)
        coef_time = _ridge_lstsq(X, np.log(np.maximum(t, _TIME_FLOOR)))
        coef_shuffle = _ridge_lstsq(X, np.log(np.maximum(s, _BYTES_FLOOR)))
        return cls(
            coef_time=coef_time,
            coef_shuffle=coef_shuffle,
            d_ref=d_ref,
            p_ref=p_ref,
            d_range=(float(d.min()), float(d.max())),
            p_range=(int(p.min()), int(p.max())),
            n_samples=len(obs),
        )

    # -- prediction -------------------------------------------------------

    def _predict(self, coef: np.ndarray, d: float, p: float) -> float:
        X = design_matrix(np.array([d]), np.array([p]), self.d_ref, self.p_ref)
        log_value = min(float((X @ coef)[0]), _LOG_CAP)
        return float(np.exp(log_value))

    def predict_time(self, d: float, p: float) -> float:
        """Eq. 1: predicted stage execution time (seconds, > 0)."""
        return self._predict(self.coef_time, max(d, 1.0), max(p, 1.0))

    def predict_shuffle(self, d: float, p: float) -> float:
        """Eq. 2: predicted shuffle volume (bytes, > 0).

        An all-zero shuffle series fits to the byte floor (~1 byte),
        which the cost function's significance test treats as zero.
        """
        return self._predict(self.coef_shuffle, max(d, 1.0), max(p, 1.0))

    def search_bounds(self) -> Tuple[int, int]:
        """P range the optimizer may trust: the observed envelope.

        Cubic surrogates extrapolate wildly outside their data — the
        profiling grid defines the searchable space, exactly as the
        paper's test runs bound what CHOPPER has evidence for.
        """
        lo, hi = self.p_range
        return max(1, int(lo)), max(2, int(hi))

    # -- diagnostics -------------------------------------------------------

    def time_residuals(
        self, observations: Sequence[StageObservation]
    ) -> np.ndarray:
        return np.array(
            [
                o.duration - self.predict_time(o.input_bytes, o.num_partitions)
                for o in observations
            ]
        )

    def r2_time(self, observations: Sequence[StageObservation]) -> float:
        """Coefficient of determination of the time fit on given samples."""
        t = np.array([o.duration for o in observations])
        if t.size < 2 or np.allclose(t, t.mean()):
            return 1.0
        resid = self.time_residuals(observations)
        return float(1.0 - (resid**2).sum() / ((t - t.mean()) ** 2).sum())

    def shuffle_residuals(
        self, observations: Sequence[StageObservation]
    ) -> np.ndarray:
        return np.array(
            [
                o.shuffle_bytes
                - self.predict_shuffle(o.input_bytes, o.num_partitions)
                for o in observations
            ]
        )

    def r2_shuffle(self, observations: Sequence[StageObservation]) -> float:
        """Coefficient of determination of the shuffle fit on given samples."""
        s = np.array([o.shuffle_bytes for o in observations])
        if s.size < 2 or np.allclose(s, s.mean()):
            return 1.0
        resid = self.shuffle_residuals(observations)
        return float(1.0 - (resid**2).sum() / ((s - s.mean()) ** 2).sum())

    def mape_time(self, observations: Sequence[StageObservation]) -> float:
        """Median absolute percentage error of the time fit.

        The fit minimizes *relative* error, so this is the matching
        goodness measure (absolute R² over-weights the largest samples).
        """
        t = np.array([o.duration for o in observations])
        if t.size == 0:
            return 0.0
        resid = self.time_residuals(observations)
        return float(np.median(np.abs(resid) / np.maximum(t, 1e-9)))

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "coef_time": self.coef_time.tolist(),
            "coef_shuffle": self.coef_shuffle.tolist(),
            "d_ref": self.d_ref,
            "p_ref": self.p_ref,
            "d_range": list(self.d_range),
            "p_range": list(self.p_range),
            "n_samples": self.n_samples,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StagePerfModel":
        return cls(
            coef_time=np.array(payload["coef_time"]),
            coef_shuffle=np.array(payload["coef_shuffle"]),
            d_ref=payload["d_ref"],
            p_ref=payload["p_ref"],
            d_range=(payload["d_range"][0], payload["d_range"][1]),
            p_range=(payload["p_range"][0], payload["p_range"][1]),
            n_samples=payload["n_samples"],
        )


def _ridge_lstsq(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Least squares with a tiny ridge term for conditioning."""
    n = X.shape[1]
    A = X.T @ X + _RIDGE * np.eye(n)
    b = X.T @ y
    try:
        return np.linalg.solve(A, b)
    except np.linalg.LinAlgError:  # pragma: no cover - ridge prevents this
        return np.linalg.lstsq(X, y, rcond=None)[0]


def fit_models_by_partitioner(
    observations: Iterable[StageObservation],
) -> dict:
    """Group one stage's observations by partitioner kind and fit each.

    Observations without a partitioner kind (source stages) are folded
    into both kinds — the scheme choice doesn't affect them, but the
    optimizer still needs a model to price their parallelism.
    """
    by_kind: dict = {"hash": [], "range": []}
    for obs in observations:
        if obs.partitioner_kind is None:
            by_kind["hash"].append(obs)
            by_kind["range"].append(obs)
        elif obs.partitioner_kind in by_kind:
            by_kind[obs.partitioner_kind].append(obs)
    models = {}
    for kind, rows in by_kind.items():
        if len(rows) >= 2:
            models[kind] = StagePerfModel.fit(rows)
    if not models:
        raise ModelError("no partitioner kind has enough observations")
    return models

"""Algorithm 3: the globally-optimized partition scheme.

Per §III-C, the DAG is regrouped from the sinks toward the sources:
stages joined by a cogroup/join dependency collapse into a *subgraph*
that must share one partition scheme (so the join sides end up
co-partitioned and the join-side shuffle disappears). For each regrouped
node:

* plain stage → Algorithm 1;
* subgraph → ``get_subgraph_par``: take each member's Algorithm-1
  candidate, price applying it to *all* members (``getCost``), keep the
  cheapest shared scheme;
* user-fixed stage → keep the user's scheme unless the optimal scheme
  plus the cost of an inserted repartition phase beats it by the factor
  gamma (1.5, "to tolerate the model estimation error"), in which case a
  repartition stage is inserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.chopper.cost import CostWeights, repartition_cost, stage_cost
from repro.chopper.optimizer import (
    StageScheme,
    default_baselines,
    get_stage_input,
    get_stage_par,
)
from repro.chopper.schemes import PartitionScheme
from repro.chopper.workload_db import DagStage, WorkloadDB

GAMMA_DEFAULT = 1.5


@dataclass
class RegroupedNode:
    """One node of the regrouped DAG: a stage or a co-partition subgraph."""

    members: List[DagStage] = field(default_factory=list)

    @property
    def is_subgraph(self) -> bool:
        return len(self.members) > 1

    def signatures(self) -> List[str]:
        return [m.signature for m in self.members]


def get_regrouped_dag(db: WorkloadDB, workload: str) -> List[RegroupedNode]:
    """Group dependent stages into shared-scheme subgraphs (end to source).

    Two kinds of grouping, per §III-C:

    * **join subgraphs** — a stage whose base is a cogroup
      (``cogroup_sides >= 2``) pulls its parent stages into one subgraph:
      the parents' output partitioning must match the consumer's scheme
      for the join shuffle to vanish;
    * **partition-dependency (source) subgraphs** — stages whose input
      granularity is inherited from a source RDD (no shuffled input)
      cannot be re-partitioned independently; all stages over one source
      form a subgraph whose single scheme sets the source's split count,
      priced over *every* member (the load stage plus each cached-scan
      stage).

    Iterating from the last stage backwards matches the paper ("started
    from the end stages of the graph and iterated towards the source");
    join grouping takes precedence.
    """
    stages = db.dag(workload).stages
    by_sig = {s.signature: s for s in stages}
    assigned: set = set()
    nodes: List[RegroupedNode] = []
    for stage in reversed(stages):
        if stage.signature in assigned:
            continue
        if stage.cogroup_sides >= 2:
            node = RegroupedNode(members=[stage])
            assigned.add(stage.signature)
            for parent_sig in stage.parent_signatures:
                parent = by_sig.get(parent_sig)
                if parent is not None and parent.signature not in assigned:
                    node.members.append(parent)
                    assigned.add(parent.signature)
            nodes.append(node)
    # Source-granularity groups over whatever remains.
    by_source: dict = {}
    for stage in stages:
        if stage.signature in assigned:
            continue
        if stage.observed_partitioner_kind is None and stage.source_signatures:
            key = stage.source_signatures[0]
            by_source.setdefault(key, RegroupedNode()).members.append(stage)
            assigned.add(stage.signature)
    nodes.extend(by_source.values())
    # Everything else stands alone.
    for stage in stages:
        if stage.signature not in assigned:
            nodes.append(RegroupedNode(members=[stage]))
            assigned.add(stage.signature)
    nodes.sort(key=lambda n: min(m.order for m in n.members))
    return nodes


def get_cost(
    db: WorkloadDB,
    workload: str,
    members: List[DagStage],
    scheme: PartitionScheme,
    d_total: float,
    weights: CostWeights,
) -> float:
    """The paper's ``getCost``: Eq. 3 summed over ``members`` under one scheme.

    Members without a trained model for the scheme's partitioner kind
    (e.g. a source stage profiled only one way) contribute via whichever
    model exists.
    """
    total = 0.0
    for member in members:
        model = _best_available_model(db, workload, member.signature, scheme.kind)
        if model is None:
            continue
        d = get_stage_input(db, workload, member.signature, d_total)
        t_default, s_default = default_baselines(
            db, workload, member.signature, d, weights
        )
        # Iterative stages (repeats > 1) execute the scheme that many
        # times; weight them accordingly.
        total += member.repeats * stage_cost(
            model, d, scheme.num_partitions, weights,
            t_default=t_default, s_default=s_default,
        )
    return total


def get_subgraph_par(
    db: WorkloadDB,
    workload: str,
    members: List[DagStage],
    d_total: float,
    weights: CostWeights,
) -> Tuple[PartitionScheme, float]:
    """The paper's ``getSubGraphPar``: cheapest shared scheme for a subgraph."""
    best_scheme: Optional[PartitionScheme] = None
    best_total = float("inf")
    for member in members:
        d = get_stage_input(db, workload, member.signature, d_total)
        candidate, _cost = get_stage_par(db, workload, member.signature, d, weights)
        total = get_cost(db, workload, members, candidate, d_total, weights)
        if total < best_total:
            best_scheme, best_total = candidate, total
    assert best_scheme is not None, "subgraph has no members with models"
    return best_scheme, best_total


def get_global_par(
    db: WorkloadDB,
    workload: str,
    d_total: float,
    weights: CostWeights,
    gamma: float = GAMMA_DEFAULT,
    cluster_parallelism: int = 136,
) -> List[StageScheme]:
    """Algorithm 3: globally-optimized schemes for every stage.

    Returns one :class:`StageScheme` per DAG stage; members of a join
    subgraph share a ``group`` label (the advisor turns that into one
    shared ``SchemeRef``, i.e. identical partitioners at runtime).
    """
    out: List[StageScheme] = []
    for idx, node in enumerate(get_regrouped_dag(db, workload)):
        group = f"g{idx}" if node.is_subgraph else None
        if node.is_subgraph:
            scheme, cost = get_subgraph_par(
                db, workload, node.members, d_total, weights
            )
        else:
            member = node.members[0]
            d = get_stage_input(db, workload, member.signature, d_total)
            scheme, cost = get_stage_par(db, workload, member.signature, d, weights)

        # The fixed-stage gamma test, applied node-wide: a user-fixed
        # member whose scheme the node wants to change must clear the
        # gamma bar (benefit > gamma x (optimized cost + repartition
        # overhead)). If it does, the member is flagged for an inserted
        # repartition phase; if not, the WHOLE node is left untouched —
        # "CHOPPER leaves the user optimization intact" (§III-C), and
        # half-retuning a co-partitioned group would break it.
        insert_for: set = set()
        rejected = False
        for member in node.members:
            current = _observed_scheme(member)
            if not member.user_fixed or current is None or current == scheme:
                continue
            if _gamma_accepts(
                db, workload, member, current, scheme,
                d_total, weights, gamma, cluster_parallelism,
            ):
                insert_for.add(member.signature)
            else:
                rejected = True
                break
        if rejected:
            continue  # no entries: the advisor leaves this node alone

        for member in node.members:
            out.append(
                StageScheme(
                    signature=member.signature,
                    scheme=scheme,
                    cost=cost,
                    group=group,
                    insert_repartition=member.signature in insert_for,
                )
            )
    out.sort(key=lambda s: db.dag(workload).stage(s.signature).order)
    return out


def _gamma_accepts(
    db: WorkloadDB,
    workload: str,
    member: DagStage,
    current: PartitionScheme,
    scheme: PartitionScheme,
    d_total: float,
    weights: CostWeights,
    gamma: float,
    cluster_parallelism: int,
) -> bool:
    """True if re-partitioning a user-fixed stage clears the gamma bar."""
    d = get_stage_input(db, workload, member.signature, d_total)
    cur_cost = get_cost(db, workload, [member], current, d_total, weights)
    opt_cost = get_cost(db, workload, [member], scheme, d_total, weights)
    # Normalize the repartition's wall-clock estimate into Eq. 3 units via
    # the stage's default-parallelism time.
    model = _best_available_model(db, workload, member.signature, scheme.kind)
    t_default = (
        model.predict_time(d, weights.default_parallelism) if model else 0.0
    )
    rep = repartition_cost(
        d, scheme.num_partitions, cluster_parallelism=cluster_parallelism
    )
    rep_norm = rep / t_default if t_default > 1e-9 else rep
    return cur_cost > gamma * (opt_cost + rep_norm)


def _observed_scheme(member: DagStage) -> Optional[PartitionScheme]:
    if member.observed_partitioner_kind is None or member.observed_num_partitions < 1:
        return None
    return PartitionScheme(
        member.observed_partitioner_kind, member.observed_num_partitions
    )


def _best_available_model(db, workload, signature, preferred_kind):
    if db.has_model(workload, signature, preferred_kind):
        return db.model(workload, signature, preferred_kind)
    other = "hash" if preferred_kind == "range" else "range"
    if db.has_model(workload, signature, other):
        return db.model(workload, signature, other)
    return None

"""Process-pool fan-out for independent measured runs.

The profiling sweep (and ``compare``'s head-to-head pair) is a set of
completely independent simulations: each ``(scale, kind, P)`` test run
builds its own :class:`~repro.engine.context.AnalyticsContext` and never
reads another run's state. That makes them safe to farm out to worker
*processes* — each worker replays one measured run exactly as the serial
loop would have, returns the picklable :class:`RunRecord`, and the
driver merges the records into the workload DB **in the serial loop's
order**, so the DB contents (and every downstream model/optimizer
decision) are bit-identical to a serial sweep.

Run specs carry (workload, cluster factory, base conf, advisor spec)
rather than live objects with context references; advisors are rebuilt
worker-side from their constructor arguments. Anything unpicklable (a
lambda cluster factory, a custom workload) makes the caller fall back to
the serial path.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Any, List, Optional, Sequence, Tuple

from repro.chopper.advisor import ChopperAdvisor, ProfilingAdvisor
from repro.chopper.stats import RunRecord, StatisticsCollector
from repro.engine.effects import dumps_payload, loads_payload

# (workload, cluster_factory, base_conf, advisor_spec, scale, label,
#  copartition) where advisor_spec is None | ("profiling", kind, P) |
#  ("config", WorkloadConfig).
RunSpec = Tuple[Any, Any, Any, Optional[tuple], float, str, bool]


def measure_one(spec: RunSpec) -> Tuple[str, RunRecord, Any]:
    """Worker-side measured run (mirrors ChopperRunner._measured_run).

    Module-level so it pickles by reference. The worker's context runs
    fully serial (``physical_parallelism=1``) — the processes are the
    parallelism — which changes nothing: simulated results are proven
    identical across physical parallelism levels.
    """
    from repro.engine.context import AnalyticsContext

    (workload, cluster_factory, base_conf, advisor_spec, scale, label,
     copartition) = spec
    if advisor_spec is None:
        advisor = None
    elif advisor_spec[0] == "profiling":
        advisor = ProfilingAdvisor(
            advisor_spec[1], advisor_spec[2], override_fixed=True
        )
    else:
        advisor = ChopperAdvisor(advisor_spec[1])
    conf = replace(
        base_conf, copartition_scheduling=copartition, physical_parallelism=1
    )
    ctx = AnalyticsContext(cluster_factory(), conf)
    if advisor is not None:
        ctx.set_advisor(advisor)
    collector = StatisticsCollector(workload.name, workload.virtual_bytes(scale))
    with collector.attached(ctx):
        result = workload.run(ctx, scale=scale)
    record = collector.record
    record.total_time = ctx.now
    return label, record, result


def picklable(*objects: Any) -> bool:
    """Can every object cross a process boundary?"""
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def measure_chunk(blob: bytes) -> bytes:
    """Worker-side chunk runner for the pickle-light protocol.

    ``blob`` decodes (protocol 5) to ``(header, variations)`` where
    ``header`` is the ``(workload, cluster_factory, base_conf)`` triple
    every spec of the sweep shares — pickled once per chunk instead of
    once per spec — and each variation is a ``(advisor_spec, scale,
    label, copartition)`` tail. Results come back as one encoded list,
    so a chunk of N runs costs one IPC round trip, not N.
    """
    header, variations = loads_payload(blob)
    return dumps_payload([measure_one(header + tail) for tail in variations])


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The fork start method when the platform offers it, else None.

    Forked workers inherit the driver's memoized datagen micro-blocks
    (copy-on-write), so running the first spec inline on the driver
    pre-warms every worker's block cache for free.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def run_specs(specs: Sequence[RunSpec], jobs: int) -> List[Tuple[str, RunRecord, Any]]:
    """Run measured-run specs on a process pool; results in spec order.

    Sweeps (every spec sharing one ``(workload, cluster_factory,
    base_conf)`` header) use the pickle-light chunked protocol: the
    driver runs the first spec inline — warming the datagen block cache
    that forked workers then inherit — and ships the rest as
    round-robin chunks with the shared header pickled once per chunk
    (protocol 5). Heterogeneous spec lists fall back to one-task-per-
    spec ``pool.map``. Either way the returned list is in spec order,
    so callers merge records exactly as the serial loop would.
    """
    workers = max(1, min(jobs, len(specs)))
    if workers == 1 or len(specs) == 1:
        return [measure_one(spec) for spec in specs]
    head = specs[0]
    shared = all(
        s[0] is head[0] and s[1] is head[1] and s[2] is head[2] for s in specs
    )
    if not shared:
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_fork_context()
        ) as pool:
            return list(pool.map(measure_one, specs))
    results: List[Optional[Tuple[str, RunRecord, Any]]] = [None] * len(specs)
    results[0] = measure_one(head)  # inline: pre-warms the block cache
    rest = list(range(1, len(specs)))
    workers = min(workers, len(rest))
    chunks = [rest[i::workers] for i in range(workers)]
    header = head[:3]
    blobs = [
        dumps_payload((header, [specs[j][3:] for j in chunk]))
        for chunk in chunks
    ]
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=_fork_context()
    ) as pool:
        for chunk, out in zip(chunks, pool.map(measure_chunk, blobs)):
            for j, res in zip(chunk, loads_payload(out)):
                results[j] = res
    return results  # type: ignore[return-value]

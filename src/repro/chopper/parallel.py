"""Process-pool fan-out for independent measured runs.

The profiling sweep (and ``compare``'s head-to-head pair) is a set of
completely independent simulations: each ``(scale, kind, P)`` test run
builds its own :class:`~repro.engine.context.AnalyticsContext` and never
reads another run's state. That makes them safe to farm out to worker
*processes* — each worker replays one measured run exactly as the serial
loop would have, returns the picklable :class:`RunRecord`, and the
driver merges the records into the workload DB **in the serial loop's
order**, so the DB contents (and every downstream model/optimizer
decision) are bit-identical to a serial sweep.

Run specs carry (workload, cluster factory, base conf, advisor spec)
rather than live objects with context references; advisors are rebuilt
worker-side from their constructor arguments. Anything unpicklable (a
lambda cluster factory, a custom workload) makes the caller fall back to
the serial path.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Any, List, Optional, Sequence, Tuple

from repro.chopper.advisor import ChopperAdvisor, ProfilingAdvisor
from repro.chopper.stats import RunRecord, StatisticsCollector

# (workload, cluster_factory, base_conf, advisor_spec, scale, label,
#  copartition) where advisor_spec is None | ("profiling", kind, P) |
#  ("config", WorkloadConfig).
RunSpec = Tuple[Any, Any, Any, Optional[tuple], float, str, bool]


def measure_one(spec: RunSpec) -> Tuple[str, RunRecord, Any]:
    """Worker-side measured run (mirrors ChopperRunner._measured_run).

    Module-level so it pickles by reference. The worker's context runs
    fully serial (``physical_parallelism=1``) — the processes are the
    parallelism — which changes nothing: simulated results are proven
    identical across physical parallelism levels.
    """
    from repro.engine.context import AnalyticsContext

    (workload, cluster_factory, base_conf, advisor_spec, scale, label,
     copartition) = spec
    if advisor_spec is None:
        advisor = None
    elif advisor_spec[0] == "profiling":
        advisor = ProfilingAdvisor(
            advisor_spec[1], advisor_spec[2], override_fixed=True
        )
    else:
        advisor = ChopperAdvisor(advisor_spec[1])
    conf = replace(
        base_conf, copartition_scheduling=copartition, physical_parallelism=1
    )
    ctx = AnalyticsContext(cluster_factory(), conf)
    if advisor is not None:
        ctx.set_advisor(advisor)
    collector = StatisticsCollector(workload.name, workload.virtual_bytes(scale))
    with collector.attached(ctx):
        result = workload.run(ctx, scale=scale)
    record = collector.record
    record.total_time = ctx.now
    return label, record, result


def picklable(*objects: Any) -> bool:
    """Can every object cross a process boundary?"""
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def run_specs(specs: Sequence[RunSpec], jobs: int) -> List[Tuple[str, RunRecord, Any]]:
    """Run measured-run specs on a process pool; results in spec order."""
    workers = max(1, min(jobs, len(specs)))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(measure_one, specs))

"""Process-pool fan-out for independent measured runs.

The profiling sweep (and ``compare``'s head-to-head pair) is a set of
completely independent simulations: each ``(scale, kind, P)`` test run
builds its own :class:`~repro.engine.context.AnalyticsContext` and never
reads another run's state. That makes them safe to farm out to worker
*processes* — each worker replays one measured run exactly as the serial
loop would have, returns the picklable :class:`RunRecord`, and the
driver merges the records into the workload DB **in the serial loop's
order**, so the DB contents (and every downstream model/optimizer
decision) are bit-identical to a serial sweep.

Payloads cross the process boundary through the zero-copy shared-memory
data plane (:mod:`repro.engine.shm`): the driver packs each chunk's
pickle stream and ndarray buffers into one segment and ships only the
segment name plus byte spans; workers attach and read the buffers in
place, then park their result chunk in a segment of their own (named by
the driver up front, so crashed workers cannot leak them).

Pool dispatch is not free — fork + segment setup + result merge costs
tens of milliseconds per chunk — so :func:`run_specs` falls back to the
in-process serial loop when it cannot win: single-core hosts, and sweeps
whose physical record batches are below :data:`SMALL_RUN_RECORDS`
(the ``procs4`` regression case). The fallback is byte-identical by
construction: it *is* the serial loop.

Run specs carry (workload, cluster factory, base conf, advisor spec)
rather than live objects with context references; advisors are rebuilt
worker-side from their constructor arguments. Anything unpicklable (a
lambda cluster factory, a custom workload) makes the caller fall back to
the serial path.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from functools import partial
from typing import Any, List, Optional, Sequence, Tuple

from repro.chopper.advisor import ChopperAdvisor, ProfilingAdvisor
from repro.chopper.stats import RunRecord, StatisticsCollector
from repro.engine import shm

# (workload, cluster_factory, base_conf, advisor_spec, scale, label,
#  copartition) where advisor_spec is None | ("profiling", kind, P) |
#  ("config", WorkloadConfig).
RunSpec = Tuple[Any, Any, Any, Optional[tuple], float, str, bool]

# (want metrics, want logs, want profile) — which telemetry each worker
# run should collect and ship back; None collects nothing.
Telemetry = Optional[Tuple[bool, bool, bool]]

# What measure_one returns: the telemetry blob is None unless requested,
# else {"metrics": registry dump, "logs": records, "profile": rollup}
# (each key present only when its flag was set), plus a "worker" slot
# label stamped in by run_specs for pool-dispatched runs.
RunResult = Tuple[str, RunRecord, Any, Optional[dict]]

# Sweeps whose largest run materializes fewer physical records than this
# run inline: pool dispatch overhead dwarfs the work being distributed.
# Override with REPRO_POOL_MIN_RECORDS (0 disables the size guard).
SMALL_RUN_RECORDS = 25_000

# How the last run_specs call dispatched, for tests and diagnostics:
# "serial" (trivial), "inline-small", "inline-cores", "pool", or
# "pool-heterogeneous"; "+recovered" is appended when a broken pool made
# the remainder run inline.
last_dispatch: str = ""


def measure_one(spec: RunSpec, telemetry: Telemetry = None) -> RunResult:
    """Worker-side measured run (mirrors ChopperRunner._measured_run).

    Module-level so it pickles by reference. The worker's context runs
    fully serial (``physical_parallelism=1``) — the processes are the
    parallelism — which changes nothing: simulated results are proven
    identical across physical parallelism levels.

    When ``telemetry`` asks for it, the run meters into a fresh
    per-run registry / event log / profiler — exactly what the driver's
    serial loop does — and ships the picklable state back for the
    driver-side merge.
    """
    from repro.engine.context import AnalyticsContext

    (workload, cluster_factory, base_conf, advisor_spec, scale, label,
     copartition) = spec
    if advisor_spec is None:
        advisor = None
    elif advisor_spec[0] == "profiling":
        advisor = ProfilingAdvisor(
            advisor_spec[1], advisor_spec[2], override_fixed=True
        )
    else:
        advisor = ChopperAdvisor(advisor_spec[1])
    conf = replace(
        base_conf, copartition_scheduling=copartition, physical_parallelism=1
    )
    want_metrics, want_log, want_profile = telemetry or (False, False, False)
    run_registry = event_log = profiler = None
    if want_metrics or want_log or want_profile:
        from repro.obs import EventLog, MetricsRegistry, ResourceProfiler

        if want_metrics:
            run_registry = MetricsRegistry()
        if want_log:
            event_log = EventLog()
        if want_profile:
            profiler = ResourceProfiler()
            profiler.start()
    ctx = AnalyticsContext(
        cluster_factory(), conf,
        metrics_registry=run_registry,
        event_log=event_log,
        profiler=profiler,
    )
    if event_log is not None:
        # Same bind + boundary record as the driver's serial loop, so
        # merged logs differ from a serial sweep only in seq restamping
        # and the added "worker" field.
        event_log.bind(run=label)
        event_log.emit(
            "INFO", "chopper", "measured_run", label=label, scale=scale
        )
    if advisor is not None:
        ctx.set_advisor(advisor)
    collector = StatisticsCollector(workload.name, workload.virtual_bytes(scale))
    with collector.attached(ctx):
        result = workload.run(ctx, scale=scale)
    record = collector.record
    record.total_time = ctx.now
    ctx.close()
    tele: Optional[dict] = None
    if telemetry is not None:
        if profiler is not None:
            profiler.stop()
        tele = {}
        if run_registry is not None:
            tele["metrics"] = run_registry.dump_state()
        if event_log is not None:
            tele["logs"] = list(event_log.records)
        if profiler is not None:
            tele["profile"] = profiler.rollup()
    return label, record, result, tele


def picklable(*objects: Any) -> bool:
    """Can every object cross a process boundary?"""
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def measure_chunk(task: Tuple[shm.SharedPayload, str]) -> shm.SharedPayload:
    """Worker-side chunk runner for the shared-memory protocol.

    ``task`` is (payload handle, result segment name). The handle decodes
    — zero-copy where the chunk carries array buffers — to ``(header,
    variations, telemetry)``: ``header`` is the ``(workload,
    cluster_factory, base_conf)`` triple every spec of the sweep shares,
    packed once per chunk instead of once per spec, each variation is an
    ``(advisor_spec, scale, label, copartition)`` tail, and ``telemetry``
    is the per-run collection request threaded through unchanged. The
    results of the whole chunk come back as one shared segment (created
    under the driver-chosen ``out_name``), so a chunk of N runs costs
    one segment round trip, not N pipe payloads.
    """
    payload, out_name = task
    decoded = shm.decode_shared(payload)
    try:
        header, variations, telemetry = decoded.obj
        results = [
            measure_one(header + tail, telemetry) for tail in variations
        ]
    finally:
        decoded.close()
    return shm.encode_shared(results, name=out_name)


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The fork start method when the platform offers it, else None.

    Forked workers inherit the driver's memoized datagen micro-blocks
    (copy-on-write), so running the first spec inline on the driver
    pre-warms every worker's block cache for free.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _min_pool_records() -> int:
    env = os.environ.get("REPRO_POOL_MIN_RECORDS", "").strip()
    if env:
        try:
            return int(env)
        except ValueError:
            pass
    return SMALL_RUN_RECORDS


def _pool_forced() -> bool:
    return os.environ.get("REPRO_POOL_FORCE", "").strip() == "1"


def _inline_reason(specs: Sequence[RunSpec]) -> Optional[str]:
    """Why pool dispatch cannot win for this spec list, or None.

    The 0.86x ``procs4`` case: forking workers, round-tripping segments
    and double-running the scheduler loop costs more than the sweep
    itself when the per-run record batches are small — and buys nothing
    at all when the host only has one usable core.
    """
    if _pool_forced():
        return None
    if _usable_cores() <= 1:
        return "inline-cores"
    floor = _min_pool_records()
    if floor > 0:
        largest = 0
        for spec in specs:
            records = getattr(spec[0], "physical_records", None)
            if records is None:
                return None  # unknown size: give the pool the benefit
            largest = max(largest, int(records))
        if largest < floor:
            return "inline-small"
    return None


def _label_worker(res: RunResult, worker: str) -> RunResult:
    """Stamp the worker slot into a shipped telemetry blob (if any).

    Slots are deterministic (chunk index / round-robin position), so
    repeated sweeps produce byte-identical worker-labeled series even
    though OS scheduling of the actual processes is not deterministic.
    """
    if res[3] is not None:
        res[3]["worker"] = worker
    return res


def run_specs(
    specs: Sequence[RunSpec], jobs: int, telemetry: Telemetry = None
) -> List[RunResult]:
    """Run measured-run specs on a process pool; results in spec order.

    Sweeps (every spec sharing one ``(workload, cluster_factory,
    base_conf)`` header) use the shared-memory chunked protocol: the
    driver runs the first spec inline — warming the datagen block cache
    that forked workers then inherit — and parks the rest as round-robin
    chunks in shared segments, header packed once per chunk. Workers
    return their chunk's results through driver-named segments, which
    the driver copies out and unlinks. Heterogeneous spec lists fall
    back to one-task-per-spec ``pool.map``. Either way the returned list
    is in spec order, so callers merge records exactly as the serial
    loop would.

    Small sweeps and single-core hosts skip the pool entirely (see
    :func:`_inline_reason`), and a pool that breaks mid-flight (a killed
    worker) is swept clean and the unfinished specs re-run inline — the
    result is byte-identical in every case because each fallback *is*
    the serial loop.
    """
    global last_dispatch
    workers = max(1, min(jobs, len(specs)))
    if workers == 1 or len(specs) == 1:
        last_dispatch = "serial"
        return [measure_one(spec, telemetry) for spec in specs]
    reason = _inline_reason(specs)
    if reason is not None:
        last_dispatch = reason
        return [measure_one(spec, telemetry) for spec in specs]
    head = specs[0]
    shared = all(
        s[0] is head[0] and s[1] is head[1] and s[2] is head[2] for s in specs
    )
    if not shared:
        last_dispatch = "pool-heterogeneous"
        try:
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=_fork_context()
            ) as pool:
                return [
                    _label_worker(res, f"w{i % workers}")
                    for i, res in enumerate(
                        pool.map(partial(measure_one, telemetry=telemetry), specs)
                    )
                ]
        except BrokenProcessPool:
            last_dispatch += "+recovered"
            # Inline re-runs happen on the driver, so no worker label.
            return [measure_one(spec, telemetry) for spec in specs]
    results: List[Optional[RunResult]] = [None] * len(specs)
    # Inline: pre-warms the block cache; runs on the driver (no label).
    results[0] = measure_one(head, telemetry)
    rest = list(range(1, len(specs)))
    workers = min(workers, len(rest))
    chunks = [rest[i::workers] for i in range(workers)]
    header = head[:3]
    last_dispatch = "pool"
    out_names = [shm.next_name(f"out{i}-") for i in range(len(chunks))]
    try:
        tasks = [
            (
                shm.encode_shared(
                    (header, [specs[j][3:] for j in chunk], telemetry)
                ),
                out_name,
            )
            for chunk, out_name in zip(chunks, out_names)
        ]
        try:
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=_fork_context()
            ) as pool:
                for slot, (chunk, out) in enumerate(
                    zip(chunks, pool.map(measure_chunk, tasks))
                ):
                    decoded = shm.decode_shared(out, copy=True)
                    for j, res in zip(chunk, decoded.obj):
                        results[j] = _label_worker(res, f"w{slot}")
                    if out.segment is not None:
                        shm.unlink_ref(out.segment)
        except BrokenProcessPool:
            last_dispatch += "+recovered"
            for j in rest:
                if results[j] is None:
                    results[j] = measure_one(specs[j], telemetry)
    finally:
        # Sweep every segment this fan-out may have created: the chunk
        # segments the driver owns, and any result segment a worker
        # parked before dying (driver-chosen names, so no reply needed).
        shm.cleanup_segments()
        for name in out_names:
            shm.unlink_ref((shm._backend(), name))
    return results  # type: ignore[return-value]

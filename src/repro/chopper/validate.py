"""Config validation: check a workload config against a real job graph.

Configs are keyed by structural stage signatures, so they silently stop
matching when the workload's code changes (a new transformation shifts
every downstream signature). :func:`validate_config` dry-runs the
signature lookup against a provisional stage graph and reports:

* **matched** — entries that will apply;
* **stale** — entries whose signature no longer exists in the graph
  (the workload changed since profiling; re-profile);
* **uncovered** — stages with no entry (they will run with defaults);
* **warnings** — schemes that look pathological for the cluster
  (partition counts far below the core count, or far beyond the
  engine's task-dispatch comfort zone).

Use before a production run::

    report = validate_config(config, final_rdd, ctx)
    if not report.ok:
        print(report.summary())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List

from repro.chopper.config_gen import WorkloadConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import AnalyticsContext
    from repro.engine.rdd import RDD


@dataclass
class ValidationReport:
    """Outcome of a config-vs-graph dry run."""

    matched: List[str] = field(default_factory=list)
    stale: List[str] = field(default_factory=list)
    uncovered: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every entry matches and nothing looks pathological."""
        return not self.stale and not self.warnings

    @property
    def coverage(self) -> float:
        """Fraction of graph stages the config covers."""
        total = len(self.matched) + len(self.uncovered)
        return len(self.matched) / total if total else 1.0

    def summary(self) -> str:
        lines = [
            f"config validation: {len(self.matched)} matched, "
            f"{len(self.stale)} stale, {len(self.uncovered)} uncovered "
            f"({self.coverage:.0%} coverage)"
        ]
        for sig in self.stale:
            lines.append(f"  STALE   {sig} (workload changed? re-profile)")
        for sig in self.uncovered:
            lines.append(f"  default {sig}")
        for warning in self.warnings:
            lines.append(f"  WARN    {warning}")
        return "\n".join(lines)


def validate_config(
    config: WorkloadConfig,
    final_rdd: "RDD",
    ctx: "AnalyticsContext",
    max_tasks_per_core: int = 40,
) -> ValidationReport:
    """Dry-run ``config`` against the job graph rooted at ``final_rdd``.

    Does not mutate the graph — only the signature lookup and sanity
    checks run. Note this inspects one job's graph; iterative workloads
    submit several jobs, so entries for later iterations may legitimately
    show as stale for the first job (check against the last job's graph,
    or accept partial coverage).
    """
    report = ValidationReport()
    stages = ctx.dag_scheduler.provisional_stages(final_rdd)
    graph_signatures = {stage.signature for stage in stages}

    for stage in stages:
        if config.entry(stage.signature) is not None:
            report.matched.append(stage.signature)
        else:
            report.uncovered.append(stage.signature)
    for signature in config.entries:
        if signature not in graph_signatures:
            report.stale.append(signature)

    total_cores = ctx.cluster.total_cores
    for entry in config.entries.values():
        n = entry.scheme.num_partitions
        if n < max(1, total_cores // 4):
            report.warnings.append(
                f"{entry.signature}: {n} partitions on {total_cores} cores "
                f"leaves most of the cluster idle"
            )
        elif n > total_cores * max_tasks_per_core:
            report.warnings.append(
                f"{entry.signature}: {n} partitions is >{max_tasks_per_core} "
                f"tasks per core; driver dispatch will dominate"
            )
    return report

"""Workload configuration files — the paper's Fig. 6 artifact.

CHOPPER's optimizer output is serialized as a list of tuples, each
containing a stage signature, the partitioner, and the number of
partitions (plus this implementation's co-partition group label and the
Algorithm-3 repartition-insertion flag). The modified DAGScheduler (our
:class:`~repro.chopper.advisor.ChopperAdvisor`) reads this file before
each stage executes and adopts the scheme.

Config files round-trip through JSON so they can be generated offline,
inspected, and reused — mirroring the paper's "dynamic updates to the
Spark configuration file whenever more runtime information is obtained".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.chopper.optimizer import StageScheme
from repro.chopper.schemes import PartitionScheme


@dataclass
class ConfigEntry:
    """One tuple of the workload config file."""

    signature: str
    scheme: PartitionScheme
    cost: float = 0.0
    group: Optional[str] = None
    insert_repartition: bool = False

    def to_dict(self) -> dict:
        return {
            "signature": self.signature,
            "scheme": self.scheme.to_dict(),
            "cost": self.cost,
            "group": self.group,
            "insert_repartition": self.insert_repartition,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ConfigEntry":
        return cls(
            signature=payload["signature"],
            scheme=PartitionScheme.from_dict(payload["scheme"]),
            cost=payload.get("cost", 0.0),
            group=payload.get("group"),
            insert_repartition=payload.get("insert_repartition", False),
        )


@dataclass
class WorkloadConfig:
    """The full per-workload configuration file."""

    workload: str
    entries: Dict[str, ConfigEntry] = field(default_factory=dict)

    def entry(self, signature: str) -> Optional[ConfigEntry]:
        return self.entries.get(signature)

    def add(self, entry: ConfigEntry) -> None:
        self.entries[entry.signature] = entry

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def from_schemes(
        cls, workload: str, schemes: List[StageScheme]
    ) -> "WorkloadConfig":
        config = cls(workload=workload)
        for scheme in schemes:
            config.add(
                ConfigEntry(
                    signature=scheme.signature,
                    scheme=scheme.scheme,
                    cost=scheme.cost,
                    group=scheme.group,
                    insert_repartition=scheme.insert_repartition,
                )
            )
        return config

    # -- persistence -------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "workload": self.workload,
                "entries": [e.to_dict() for e in self.entries.values()],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "WorkloadConfig":
        payload = json.loads(text)
        config = cls(workload=payload["workload"])
        for entry in payload["entries"]:
            config.add(ConfigEntry.from_dict(entry))
        return config

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "WorkloadConfig":
        return cls.from_json(Path(path).read_text())

"""Workload DB: CHOPPER's persistent store of observations, models, DAGs.

Per the paper (§III): "Workload DB stores the observed information
including the input and intermediate data size, the number of stages, the
number of tasks per stage, and the resource utilization information" and
the partition optimizer "retrieves application statistics, trains models"
from it.

Layout: per workload name,

* ``runs`` — every :class:`RunRecord`'s observations (training samples);
* ``dag`` — a :class:`WorkloadDag` distilled from a reference run: the
  per-stage structure Algorithm 3 walks (order, parents, join grouping,
  fixed flags, input-size fractions);
* trained :class:`StagePerfModel` pairs, keyed by
  ``(stage signature, partitioner kind)`` — filled by the runner.

The DB round-trips to JSON so benchmarks can profile once and reuse.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ModelError
from repro.chopper.model import StagePerfModel
from repro.chopper.stats import RunRecord, StageObservation


@dataclass
class DagStage:
    """One stage of a workload's (regroup-able) DAG summary."""

    signature: str
    kind: str
    order: int
    parent_signatures: Tuple[str, ...]
    cogroup_sides: int
    user_fixed: bool
    # Average stage input size as a fraction of the workload input size,
    # used to estimate D for a new input size (get_stage_input).
    input_fraction: float
    repeats: int = 1  # how many times this signature executed in the run
    # Scheme observed in the reference run (Algorithm 3's "current" scheme
    # for user-fixed stages).
    observed_partitioner_kind: Optional[str] = None
    observed_num_partitions: int = 0
    # Sources whose granularity this stage inherits (Algorithm 3 groups).
    source_signatures: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "signature": self.signature,
            "kind": self.kind,
            "order": self.order,
            "parent_signatures": list(self.parent_signatures),
            "cogroup_sides": self.cogroup_sides,
            "user_fixed": self.user_fixed,
            "input_fraction": self.input_fraction,
            "repeats": self.repeats,
            "observed_partitioner_kind": self.observed_partitioner_kind,
            "observed_num_partitions": self.observed_num_partitions,
            "source_signatures": list(self.source_signatures),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DagStage":
        payload = dict(payload)
        payload["parent_signatures"] = tuple(payload["parent_signatures"])
        payload["source_signatures"] = tuple(payload.get("source_signatures", ()))
        return cls(**payload)


@dataclass
class WorkloadDag:
    """Ordered stage summary of one workload (Algorithm 3's input)."""

    stages: List[DagStage] = field(default_factory=list)

    def stage(self, signature: str) -> DagStage:
        for stage in self.stages:
            if stage.signature == signature:
                return stage
        raise ModelError(f"no DAG stage with signature {signature!r}")

    def signatures(self) -> List[str]:
        return [s.signature for s in self.stages]

    @classmethod
    def from_run(cls, record: RunRecord) -> "WorkloadDag":
        """Distill the DAG summary from a reference run's observations.

        Repeated signatures (iterative stages, the paper's KMeans 12-17)
        collapse into one DagStage with ``repeats`` counting executions
        and ``input_fraction`` averaging over them.
        """
        dag = cls()
        seen: Dict[str, DagStage] = {}
        total = max(record.input_bytes, 1.0)
        for obs in record.observations:
            frac = obs.input_bytes / total
            existing = seen.get(obs.signature)
            if existing is None:
                stage = DagStage(
                    signature=obs.signature,
                    kind=obs.kind,
                    order=obs.order,
                    parent_signatures=obs.parent_signatures,
                    cogroup_sides=obs.cogroup_sides,
                    user_fixed=obs.user_fixed,
                    input_fraction=frac,
                    observed_partitioner_kind=obs.partitioner_kind,
                    observed_num_partitions=obs.num_partitions,
                    source_signatures=obs.source_signatures,
                )
                seen[obs.signature] = stage
                dag.stages.append(stage)
            else:
                existing.input_fraction = (
                    existing.input_fraction * existing.repeats + frac
                ) / (existing.repeats + 1)
                existing.repeats += 1
        return dag

    def to_dict(self) -> dict:
        return {"stages": [s.to_dict() for s in self.stages]}

    @classmethod
    def from_dict(cls, payload: dict) -> "WorkloadDag":
        return cls(stages=[DagStage.from_dict(s) for s in payload["stages"]])


class WorkloadDB:
    """Observations + DAGs + trained models, per workload name."""

    def __init__(self) -> None:
        self._observations: Dict[str, List[StageObservation]] = {}
        self._dags: Dict[str, WorkloadDag] = {}
        self._models: Dict[Tuple[str, str, str], StagePerfModel] = {}

    # -- observations ---------------------------------------------------

    def add_run(self, record: RunRecord) -> None:
        self._observations.setdefault(record.workload, []).extend(
            record.observations
        )

    def add_observation(self, workload: str, observation: StageObservation) -> None:
        """Append a single production observation (online adaptation)."""
        self._observations.setdefault(workload, []).append(observation)

    def observations(
        self,
        workload: str,
        signature: Optional[str] = None,
        partitioner_kind: Optional[str] = None,
    ) -> List[StageObservation]:
        rows = self._observations.get(workload, [])
        if signature is not None:
            rows = [o for o in rows if o.signature == signature]
        if partitioner_kind is not None:
            rows = [
                o for o in rows
                if o.partitioner_kind in (partitioner_kind, None)
            ]
        return rows

    def workloads(self) -> List[str]:
        return sorted(self._observations)

    # -- DAG summaries ---------------------------------------------------

    def set_dag(self, workload: str, dag: WorkloadDag) -> None:
        self._dags[workload] = dag

    def dag(self, workload: str) -> WorkloadDag:
        try:
            return self._dags[workload]
        except KeyError:
            raise ModelError(
                f"no DAG recorded for workload {workload!r}; run a reference "
                f"profile first"
            ) from None

    def has_dag(self, workload: str) -> bool:
        return workload in self._dags

    # -- models ------------------------------------------------------------

    def set_model(
        self, workload: str, signature: str, partitioner_kind: str,
        model: StagePerfModel,
    ) -> None:
        self._models[(workload, signature, partitioner_kind)] = model

    def model(
        self, workload: str, signature: str, partitioner_kind: str
    ) -> StagePerfModel:
        try:
            return self._models[(workload, signature, partitioner_kind)]
        except KeyError:
            raise ModelError(
                f"no trained {partitioner_kind} model for stage "
                f"{signature!r} of {workload!r}"
            ) from None

    def has_model(
        self, workload: str, signature: str, partitioner_kind: str
    ) -> bool:
        return (workload, signature, partitioner_kind) in self._models

    def models(self, workload: str) -> Dict[Tuple[str, str], StagePerfModel]:
        """All trained models of one workload: (signature, kind) -> model."""
        return {
            (signature, kind): model
            for (w, signature, kind), model in sorted(self._models.items())
            if w == workload
        }

    # -- persistence -------------------------------------------------------

    def save(self, path: str | Path) -> None:
        payload = {
            "observations": {
                w: [o.to_dict() for o in rows]
                for w, rows in self._observations.items()
            },
            "dags": {w: d.to_dict() for w, d in self._dags.items()},
            "models": [
                {
                    "workload": w,
                    "signature": sig,
                    "partitioner_kind": kind,
                    "model": model.to_dict(),
                }
                for (w, sig, kind), model in self._models.items()
            ],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "WorkloadDB":
        payload = json.loads(Path(path).read_text())
        db = cls()
        for workload, rows in payload["observations"].items():
            db._observations[workload] = [
                StageObservation.from_dict(r) for r in rows
            ]
        for workload, dag in payload["dags"].items():
            db._dags[workload] = WorkloadDag.from_dict(dag)
        for entry in payload["models"]:
            db._models[
                (entry["workload"], entry["signature"], entry["partitioner_kind"])
            ] = StagePerfModel.from_dict(entry["model"])
        return db

"""Partition advisors — the "extended dynamic-partitioning DAGScheduler".

An advisor installed via ``ctx.set_advisor`` gets a ``rewrite(final_rdd,
ctx)`` call at every job submission, before stages are built (the
engine-side hook for the paper's "scheduler checks the Spark
configuration file before a stage is executed").

:class:`ChopperAdvisor` applies a :class:`WorkloadConfig`:

1. looks up each provisional stage's signature in the config;
2. re-splits source RDDs (stage-0 granularity) once per workload run;
3. retargets each stage's incoming shuffle dependencies to the config's
   scheme — hash schemes resolve immediately, range schemes become
   pending :class:`SchemeRef` s resolved (with a sampling delay) right
   before the writing map stage launches;
4. entries sharing a ``group`` label share one SchemeRef, so join/cogroup
   parents end up with *identical* partitioners;
5. re-aligns cogroups and shuffled RDDs whose parents became
   co-partitioned, converting their shuffle dependencies to narrow ones —
   eliminating the join shuffle entirely (§III-C);
6. for user-fixed dependencies, leaves the scheme intact unless the
   config says an inserted repartition phase pays off (gamma test), in
   which case an identity-shuffle stage is spliced into the lineage.

:class:`ProfilingAdvisor` forces one uniform (kind, P) everywhere — the
lightweight test runs CHOPPER uses to gather training data (§III-B), and
also exactly the setup of the paper's motivation figures 2-4.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Set

from repro.chopper.config_gen import ConfigEntry, WorkloadConfig
from repro.chopper.schemes import RANGE, PartitionScheme, SchemeRef
from repro.engine.dependencies import ShuffleDependency
from repro.engine.rdd import RDD, SourceRDD
from repro.engine.shuffled import CogroupRDD, ShuffledRDD

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import AnalyticsContext


def _walk_rdds(final_rdd: RDD) -> List[RDD]:
    """Every RDD in the lineage graph, parents before children."""
    ordered: List[RDD] = []
    seen: Set[int] = set()

    def visit(rdd: RDD) -> None:
        if rdd.id in seen:
            return
        seen.add(rdd.id)
        for dep in rdd.deps:
            visit(dep.parent)
        ordered.append(rdd)

    visit(final_rdd)
    return ordered


def _fixed_parent_partitioner(dep: ShuffleDependency):
    """The user-fixed partitioner pinning ``dep``'s parent, if any.

    Walks partitioning-preserving narrow steps down to the parent's
    shuffle; returns that shuffle's partitioner when it is user-fixed.
    """
    from repro.engine.rdd import MapPartitionsRDD

    parent = dep.parent
    while isinstance(parent, MapPartitionsRDD) and parent.partitioner is not None:
        parent = parent.deps[0].parent
    if isinstance(parent, (ShuffledRDD,)) and parent._shadow.user_fixed:
        return parent._shadow.partitioner
    return None


def _stage_inputs(stage_rdd: RDD):
    """The sources and (shadow) shuffle deps governing a stage's input.

    Walks the stage's narrow pipeline from its terminal RDD and stops at
    the first shuffle-capable RDD on each path, collecting that RDD's
    shadow shuffle dependencies — i.e. the dependencies whose partitioner
    determines the stage's input partitioning, regardless of whether they
    are currently aligned to narrow deps. Sources reached before any
    shuffle boundary are collected for re-splitting.
    """
    sources: List[SourceRDD] = []
    deps: List[ShuffleDependency] = []
    seen: Set[int] = set()

    def visit(rdd: RDD) -> None:
        if rdd.id in seen:
            return
        seen.add(rdd.id)
        if isinstance(rdd, ShuffledRDD):
            deps.append(rdd._shadow)
            # A currently-narrow (fused) aggregation is part of this
            # stage: its own input dependency must follow the same scheme
            # or the fusion would break after retuning.
            if not isinstance(rdd.deps[0], ShuffleDependency):
                visit(rdd.deps[0].parent)
            return
        if isinstance(rdd, CogroupRDD):
            for dep, shadow in zip(rdd.deps, rdd._shadows):
                deps.append(shadow)
                if not isinstance(dep, ShuffleDependency):
                    visit(dep.parent)
            return
        if isinstance(rdd, SourceRDD):
            sources.append(rdd)
            return
        for dep in rdd.deps:
            visit(dep.parent)

    visit(stage_rdd)
    return sources, deps


class ChopperAdvisor:
    """Applies a generated workload config to submitted jobs."""

    def __init__(self, config: WorkloadConfig) -> None:
        self.config = config
        self._group_refs: Dict[str, SchemeRef] = {}
        self._entry_refs: Dict[str, SchemeRef] = {}
        self._resplit_sources: Set[int] = set()
        # Diagnostics the tests and benches assert on.
        self.applied_stages: List[str] = []
        self.aligned_shuffles: int = 0
        self.inserted_repartitions: int = 0

    # ------------------------------------------------------------------

    def rewrite(self, final_rdd: RDD, ctx: "AnalyticsContext") -> None:
        # 1. Look the config up against the graph AS CONSTRUCTED, so the
        # signatures match what the reference/profiling runs recorded.
        stages = ctx.dag_scheduler.provisional_stages(final_rdd)
        completed = ctx.dag_scheduler._completed_shuffles
        assignments: List[tuple] = []  # (entry, ref, sources, deps)
        for stage in stages:
            entry = self.config.entry(stage.signature)
            if entry is None:
                continue
            self.applied_stages.append(stage.signature)
            ref = self._ref_for(entry)
            ref.resolve_eager()
            sources, deps = _stage_inputs(stage.rdd)
            assignments.append((entry, ref, sources, deps))
        # 2. Undo construction-time narrow alignment everywhere, so
        # retuning an upstream partitioner cannot leave a narrow dep whose
        # co-partitioning assumption no longer holds.
        for rdd in _walk_rdds(final_rdd):
            if isinstance(rdd, (CogroupRDD, ShuffledRDD)):
                rdd.reset_alignment()
        # 3. Apply the collected assignments.
        for entry, ref, sources, deps in assignments:
            self._apply_to_sources(sources, entry)
            self._apply_to_deps(deps, entry, ref, completed)
        # 4. Re-align whatever is (still or newly) co-partitioned.
        self._align(final_rdd)

    # ------------------------------------------------------------------

    def _ref_for(self, entry: ConfigEntry) -> SchemeRef:
        """One SchemeRef per group (shared), else one per entry."""
        if entry.group is not None:
            ref = self._group_refs.get(entry.group)
            if ref is None or ref.scheme != entry.scheme:
                # Group members share a scheme by construction; the first
                # member's ref becomes the group's.
                ref = self._group_refs.setdefault(
                    entry.group, SchemeRef(entry.scheme, group=entry.group)
                )
            return ref
        ref = self._entry_refs.get(entry.signature)
        if ref is None:
            ref = SchemeRef(entry.scheme)
            self._entry_refs[entry.signature] = ref
        return ref

    def _apply_to_sources(
        self, sources: List[SourceRDD], entry: ConfigEntry
    ) -> None:
        for rdd in sources:
            if rdd.id in self._resplit_sources:
                continue
            # Only re-split once per workload run: an already-cached
            # source must keep its granularity and its blocks.
            rdd.set_num_partitions(entry.scheme.num_partitions)
            self._resplit_sources.add(rdd.id)

    def _apply_to_deps(
        self,
        deps: List[ShuffleDependency],
        entry: ConfigEntry,
        ref: SchemeRef,
        completed: Set[int],
    ) -> None:
        # A non-fixed dep whose parent's partitioning is pinned by a
        # user-fixed shuffle is the natural insertion point for the
        # gamma-gated repartition phase: retuning it adds a shuffle stage
        # (the "inserted repartition"); pinning it to the parent's scheme
        # re-fuses and respects the user's choice. A stage's input must
        # stay co-partitioned as a whole, so when one dep pins to a fixed
        # parent, every non-fixed dep of the entry pins with it — a
        # half-pinned cogroup would read mismatched partition spaces.
        live = [d for d in deps if d.shuffle_id not in completed]
        fixed_parents = [
            p for p in (
                _fixed_parent_partitioner(d) for d in live if not d.user_fixed
            )
            if p is not None
        ]
        pin_to = None
        consumer_insertion = False
        if fixed_parents:
            if entry.insert_repartition:
                consumer_insertion = True
                self.inserted_repartitions += 1
            else:
                pin_to = fixed_parents[0]

        for dep in live:
            if dep.user_fixed:
                if entry.insert_repartition and not consumer_insertion:
                    # No downstream dep to turn into the repartition
                    # phase: splice one in front of the fixed stage (the
                    # paper's task-coalescing example).
                    self._insert_repartition(dep, ref)
                continue
            if pin_to is not None:
                dep.partitioner = pin_to
                dep.pending_scheme = None
            else:
                self._assign(dep, entry, ref)

    def _assign(
        self, dep: ShuffleDependency, entry: ConfigEntry, ref: SchemeRef
    ) -> None:
        dep_ref = ref
        if dep.ordered and ref.scheme.kind != RANGE:
            # A sort's global order needs a range partitioner; honor
            # the configured count but keep the kind.
            dep_ref = self._ordered_ref(entry)
        if dep_ref.partitioner is not None:
            dep.partitioner = dep_ref.partitioner
            dep.pending_scheme = None
        else:
            dep.pending_scheme = dep_ref

    def _ordered_ref(self, entry: ConfigEntry) -> SchemeRef:
        key = f"ordered:{entry.signature}"
        ref = self._entry_refs.get(key)
        if ref is None:
            ref = SchemeRef(
                PartitionScheme(RANGE, entry.scheme.num_partitions)
            )
            self._entry_refs[key] = ref
        return ref

    def _insert_repartition(self, dep: ShuffleDependency, ref: SchemeRef) -> None:
        """Splice an identity-shuffle repartition below a fixed dependency.

        The user's partitioner on ``dep`` is preserved; its input is
        re-partitioned first, which is exactly the paper's "insert a new
        repartitioning phase" remedy — the fixed stage now consumes
        well-granulated input without its own scheme changing.
        """
        partitioner = ref.resolve_eager()
        if partitioner is None:
            # Range repartitions for fixed deps would need sampling here;
            # fall back to a hash repartition of the same width.
            from repro.engine.partitioner import HashPartitioner

            partitioner = HashPartitioner(ref.scheme.num_partitions)
        repartitioned = ShuffledRDD(
            dep.parent, partitioner, mode="identity", op_name="chopperRepartition"
        )
        dep.parent = repartitioned
        self.inserted_repartitions += 1

    def _align(self, final_rdd: RDD) -> None:
        """Convert shuffles over co-partitioned parents to narrow deps."""
        for rdd in _walk_rdds(final_rdd):
            if isinstance(rdd, CogroupRDD):
                self.aligned_shuffles += rdd.align_deps()
            elif isinstance(rdd, ShuffledRDD):
                dep = rdd.deps[0]
                if (
                    isinstance(dep, ShuffleDependency)
                    and dep.pending_scheme is None
                    and rdd.align_to_parent()
                ):
                    self.aligned_shuffles += 1


class ProfilingAdvisor:
    """Forces one uniform (partitioner kind, P) on every tunable stage.

    CHOPPER's test runs sweep this advisor over a (kind, P) grid to
    gather the training samples for Eq. 1-2 — and the paper's motivation
    study (uniform 100..500 partitions) is the same sweep.
    """

    def __init__(
        self, kind: str, num_partitions: int, override_fixed: bool = False
    ) -> None:
        self.scheme = PartitionScheme(kind, num_partitions)
        self._resplit_sources: Set[int] = set()
        # Test runs are CHOPPER's own offline experiments; with
        # override_fixed they may vary even user-fixed schemes, so the
        # trained models know what a fixed stage WOULD cost at other P —
        # the data Algorithm 3's gamma test needs.
        self.override_fixed = override_fixed
        # ONE ref for the whole run: a production config shares range
        # bounds across grouped dependencies, so profiling must exhibit
        # the same cross-RDD behaviour (including the §III-B skew when
        # one RDD's bounds mis-partition another) or the trained models
        # would be blind to it.
        self._ref = SchemeRef(self.scheme)
        self._ref.resolve_eager()
        # Sorts keep their global order: ordered deps always get a range
        # scheme at the profiled width.
        self._ordered_ref = SchemeRef(PartitionScheme(RANGE, num_partitions))

    def rewrite(self, final_rdd: RDD, ctx: "AnalyticsContext") -> None:
        completed = ctx.dag_scheduler._completed_shuffles
        # Reset construction-time alignment so retuning is always
        # consistent, then re-align below (uniform schemes re-fuse what
        # was fused before).
        for rdd in _walk_rdds(final_rdd):
            if isinstance(rdd, (CogroupRDD, ShuffledRDD)):
                rdd.reset_alignment()
        for rdd in _walk_rdds(final_rdd):
            if isinstance(rdd, SourceRDD) and rdd.id not in self._resplit_sources:
                rdd.set_num_partitions(self.scheme.num_partitions)
                self._resplit_sources.add(rdd.id)
            for dep in rdd.shuffle_deps():
                if dep.shuffle_id in completed:
                    continue
                if dep.user_fixed and not self.override_fixed:
                    continue
                ref = self._ordered_ref if dep.ordered else self._ref
                if ref.partitioner is not None:
                    dep.partitioner = ref.partitioner
                else:
                    dep.pending_scheme = ref
        for rdd in _walk_rdds(final_rdd):
            if isinstance(rdd, CogroupRDD):
                rdd.align_deps()
            elif isinstance(rdd, ShuffledRDD):
                dep = rdd.deps[0]
                if isinstance(dep, ShuffleDependency) and dep.pending_scheme is None:
                    rdd.align_to_parent()


class FixedSchemeAdvisor:
    """Pin explicit schemes per stage signature (tests and ablations)."""

    def __init__(self, schemes: Dict[str, PartitionScheme]) -> None:
        self.config = WorkloadConfig(workload="fixed")
        for signature, scheme in schemes.items():
            self.config.add(ConfigEntry(signature=signature, scheme=scheme))
        self._delegate = ChopperAdvisor(self.config)

    def rewrite(self, final_rdd: RDD, ctx: "AnalyticsContext") -> None:
        self._delegate.rewrite(final_rdd, ctx)

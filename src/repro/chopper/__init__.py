"""CHOPPER: the paper's contribution, implemented end to end.

* :mod:`repro.chopper.stats` / :mod:`repro.chopper.workload_db` — the
  statistics collector and workload DB;
* :mod:`repro.chopper.model` — Eq. 1-2 stage performance models;
* :mod:`repro.chopper.cost` — Eq. 3-4 normalized cost objective;
* :mod:`repro.chopper.optimizer` — Algorithms 1 (per stage) and 2 (per
  workload);
* :mod:`repro.chopper.global_opt` — Algorithm 3 (regrouped DAG, shared
  subgraph schemes, gamma-gated repartition insertion);
* :mod:`repro.chopper.config_gen` — the workload configuration file;
* :mod:`repro.chopper.advisor` — the dynamic-partitioning scheduler hook
  (config application, co-partition alignment, repartition splicing);
* :mod:`repro.chopper.runner` — profile → train → optimize → run.
"""

from repro.chopper.advisor import ChopperAdvisor, FixedSchemeAdvisor, ProfilingAdvisor
from repro.chopper.config_gen import ConfigEntry, WorkloadConfig
from repro.chopper.cost import CostWeights, get_min_par, repartition_cost, stage_cost
from repro.chopper.crossval import CvReport, StageCvResult, cross_validate, cross_validate_stage
from repro.chopper.history import HistoryLogger, load_history_record, read_history
from repro.chopper.global_opt import (
    GAMMA_DEFAULT,
    RegroupedNode,
    get_global_par,
    get_regrouped_dag,
    get_subgraph_par,
)
from repro.chopper.model import StagePerfModel, fit_models_by_partitioner
from repro.chopper.online import OnlineChopper
from repro.chopper.optimizer import (
    StageScheme,
    get_stage_input,
    get_stage_par,
    get_workload_par,
)
from repro.chopper.runner import ChopperRunner, RunOutcome, improvement, stage_table
from repro.chopper.schemes import HASH, RANGE, PartitionScheme, SchemeRef
from repro.chopper.stats import RunRecord, StageObservation, StatisticsCollector
from repro.chopper.validate import ValidationReport, validate_config
from repro.chopper.workload_db import DagStage, WorkloadDB, WorkloadDag

__all__ = [
    "ChopperAdvisor",
    "FixedSchemeAdvisor",
    "ProfilingAdvisor",
    "ConfigEntry",
    "WorkloadConfig",
    "CostWeights",
    "get_min_par",
    "repartition_cost",
    "stage_cost",
    "GAMMA_DEFAULT",
    "RegroupedNode",
    "get_global_par",
    "get_regrouped_dag",
    "get_subgraph_par",
    "StagePerfModel",
    "fit_models_by_partitioner",
    "StageScheme",
    "get_stage_input",
    "get_stage_par",
    "get_workload_par",
    "CvReport",
    "StageCvResult",
    "cross_validate",
    "cross_validate_stage",
    "HistoryLogger",
    "load_history_record",
    "read_history",
    "OnlineChopper",
    "ChopperRunner",
    "RunOutcome",
    "improvement",
    "stage_table",
    "PartitionScheme",
    "SchemeRef",
    "HASH",
    "RANGE",
    "RunRecord",
    "StageObservation",
    "StatisticsCollector",
    "ValidationReport",
    "validate_config",
    "DagStage",
    "WorkloadDB",
    "WorkloadDag",
]

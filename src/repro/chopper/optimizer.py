"""Algorithms 1 and 2: per-stage and per-workload partition schemes.

Algorithm 1 (``get_stage_par``): retrieve the stage's trained range and
hash models from the workload DB, minimize Eq. 3 over P for each, and
return the (partitioner, P) pair with the lower cost.

Algorithm 2 (``get_workload_par``): iterate the workload DAG, estimate
each stage's input size from the workload input size, and apply
Algorithm 1 independently per stage — the naive scheme the paper
contrasts with the globally-optimized Algorithm 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple


from repro.common.errors import ModelError
from repro.chopper.cost import CostWeights, get_min_par
from repro.chopper.schemes import HASH, RANGE, PartitionScheme
from repro.chopper.workload_db import WorkloadDB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Tracer


def default_baselines(
    db: WorkloadDB,
    workload: str,
    signature: str,
    d: float,
    weights: CostWeights,
) -> Tuple[float, float]:
    """Eq. 3 baselines: the stage under the default setup.

    The engine default is hash at ``default_parallelism``, so the hash
    model supplies the baseline for *both* partitioner kinds — otherwise
    each kind would be normalized against itself and kinds could not be
    compared. Falls back to the range model when no hash model exists.
    """
    for kind in (HASH, RANGE):
        if db.has_model(workload, signature, kind):
            model = db.model(workload, signature, kind)
            return (
                model.predict_time(d, weights.default_parallelism),
                model.predict_shuffle(d, weights.default_parallelism),
            )
    raise ModelError(f"no trained models for stage {signature!r} of {workload!r}")


@dataclass
class StageScheme:
    """Optimizer output for one stage (one config-file tuple)."""

    signature: str
    scheme: PartitionScheme
    cost: float
    group: Optional[str] = None  # co-partition group id (Algorithm 3)
    insert_repartition: bool = False  # gamma-gated extra phase (Algorithm 3)


def get_stage_input(db: WorkloadDB, workload: str, signature: str, d_total: float) -> float:
    """Estimate a stage's input size for workload input ``d_total``.

    Uses the input fraction recorded in the DAG summary (the reference
    run's stage input / workload input ratio) — the paper's
    ``getStageInput(w, s, D)``.
    """
    stage = db.dag(workload).stage(signature)
    return max(1.0, stage.input_fraction * d_total)


def get_stage_par(
    db: WorkloadDB,
    workload: str,
    signature: str,
    d: float,
    weights: CostWeights,
) -> Tuple[PartitionScheme, float]:
    """Algorithm 1: best (partitioner, numPar, cost) for one stage.

    Tries the range model and the hash model; returns whichever
    minimizes Eq. 3. Ties go to hash (the cheaper partitioner to build).
    """
    t_default, s_default = default_baselines(db, workload, signature, d, weights)
    best: Optional[Tuple[PartitionScheme, float]] = None
    # Evaluate range first so that on an exact tie the later hash wins,
    # matching the paper's `if rCost < hCost ... else hash` ordering.
    for kind in (RANGE, HASH):
        if not db.has_model(workload, signature, kind):
            continue
        model = db.model(workload, signature, kind)
        p, cost = get_min_par(
            model, d, weights, t_default=t_default, s_default=s_default
        )
        if best is None or cost <= best[1]:
            best = (PartitionScheme(kind, p), cost)
    if best is None:
        raise ModelError(
            f"no trained models for stage {signature!r} of {workload!r}"
        )
    return best


def get_workload_par(
    db: WorkloadDB,
    workload: str,
    d_total: float,
    weights: CostWeights,
    tracer: Optional["Tracer"] = None,
) -> List[StageScheme]:
    """Algorithm 2: independent per-stage schemes over the whole DAG.

    With a ``tracer``, every per-stage decision is dropped onto the trace
    as an instant marker carrying the chosen (kind, P, cost) tuple.
    """
    schemes: List[StageScheme] = []
    for stage in db.dag(workload).stages:
        d = get_stage_input(db, workload, stage.signature, d_total)
        scheme, cost = get_stage_par(db, workload, stage.signature, d, weights)
        if tracer is not None:
            tracer.instant(
                f"scheme:{stage.signature[:12]}", "chopper.optimizer",
                signature=stage.signature, kind=scheme.kind,
                P=scheme.num_partitions, cost=round(cost, 4),
            )
        schemes.append(
            StageScheme(signature=stage.signature, scheme=scheme, cost=cost)
        )
    return schemes

"""The CHOPPER orchestration loop: profile → train → optimize → run.

Mirrors the paper's system flow (§III, Fig. 5):

1. **Profile** — lightweight test runs sweep partition counts and both
   partitioner kinds (ProfilingAdvisor) at one or more sampled input
   scales; the statistics collector feeds every stage execution into the
   workload DB. A vanilla reference run records the DAG summary.
2. **Train** — per (stage signature, partitioner kind), fit the Eq. 1-2
   models. Offline, "not in the critical path of workload execution".
3. **Optimize** — Algorithm 3 (or Algorithm 2 for the ablation) computes
   the per-stage schemes and the config generator writes the workload
   config file.
4. **Run** — the production run installs a :class:`ChopperAdvisor` built
   from the config plus co-partition-aware scheduling, and is compared
   against the vanilla default (300 partitions, hash, no advisor).
"""

from __future__ import annotations

import dataclasses
from contextlib import ExitStack, nullcontext
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.chopper.advisor import ChopperAdvisor, ProfilingAdvisor
from repro.chopper.config_gen import WorkloadConfig
from repro.chopper.cost import CostWeights
from repro.chopper.global_opt import GAMMA_DEFAULT, get_global_par
from repro.chopper.model import fit_models_by_partitioner
from repro.chopper.optimizer import get_workload_par
from repro.chopper.stats import RunRecord, StatisticsCollector
from repro.chopper.workload_db import WorkloadDB, WorkloadDag
from repro.cluster.cluster import Cluster, paper_cluster
from repro.common.errors import ConfigurationError, ModelError
from repro.engine.context import AnalyticsContext, EngineConf
from repro.obs import (
    EventLog,
    LedgerCollector,
    MetricsRegistry,
    ResourceProfiler,
    RunLedger,
    Tracer,
)
from repro.workloads.base import Workload, WorkloadResult


@dataclass
class RunOutcome:
    """One measured workload run (vanilla or CHOPPER).

    ``ctx`` is None when the run was measured in a worker process
    (``jobs > 1``) — contexts hold live closures and never cross the
    process boundary; everything reported comes from ``record``.
    """

    label: str
    record: RunRecord
    result: WorkloadResult
    ctx: Optional[AnalyticsContext]

    @property
    def total_time(self) -> float:
        return self.record.total_time

    @property
    def total_shuffle_bytes(self) -> float:
        return sum(o.shuffle_bytes for o in self.record.observations)

    @property
    def plan_events(self) -> List[dict]:
        """Relational plan-optimizer events (empty for worker-pool runs
        and for workloads that never build a Table query)."""
        if self.ctx is None:
            return []
        return list(getattr(self.ctx, "plan_events", []))

    @property
    def rule_hits(self) -> dict:
        """Total logical-rewrite hit counts across the run's plans."""
        hits: dict = {}
        for event in self.plan_events:
            for rule, n in (event.get("rule_hits") or {}).items():
                hits[rule] = hits.get(rule, 0) + n
        return hits


@dataclass
class ChopperRunner:
    """Drives the full CHOPPER pipeline for one workload."""

    workload: Workload
    cluster_factory: Callable[[], Cluster] = paper_cluster
    base_conf: EngineConf = field(default_factory=lambda: EngineConf())
    db: WorkloadDB = field(default_factory=WorkloadDB)
    weights: Optional[CostWeights] = None
    gamma: float = GAMMA_DEFAULT
    # Observability: when set, every measured run of this pipeline lands
    # on one shared trace timeline / metrics registry (CLI --trace /
    # --metrics on `compare`), and/or appends a structured entry to the
    # run ledger (CLI --ledger).
    tracer: Optional[Tracer] = None
    metrics_registry: Optional[MetricsRegistry] = None
    ledger: Optional[RunLedger] = None
    # Telemetry: a shared structured event log (CLI --log) and a sweep
    # resource profiler (CLI --profile). Both survive ``jobs > 1``:
    # workers ship their records/rollups back and the driver merges them
    # in the serial loop's order.
    event_log: Optional[EventLog] = None
    profiler: Optional[ResourceProfiler] = None

    def __post_init__(self) -> None:
        if self.weights is None:
            self.weights = CostWeights(
                default_parallelism=self.base_conf.default_parallelism
            )

    # ------------------------------------------------------------------
    # Step 1: profiling test runs
    # ------------------------------------------------------------------

    def profile(
        self,
        p_grid: Sequence[int] = (100, 200, 300, 500, 800),
        kinds: Sequence[str] = ("hash", "range"),
        scales: Sequence[float] = (0.25, 1.0),
        jobs: Optional[int] = None,
    ) -> int:
        """Run the (kind, P, scale) sweep; returns the number of test runs.

        Also performs one vanilla reference run per scale to record the
        DAG summary with the default scheme (needed by Algorithm 3's
        fixed-stage test and by ``get_stage_input``).

        ``jobs`` > 1 fans the independent test runs over a process pool
        (default: ``base_conf.physical_parallelism``); records merge
        into the DB in the serial loop's order, so the DB is
        bit-identical to a serial sweep. Traced/ledgered runners and
        unpicklable workloads fall back to the serial loop; metered,
        logged, and profiled runners fan out fine — workers ship their
        telemetry back for a deterministic driver-side merge.
        """
        jobs = self._resolve_jobs(jobs)
        with self._phase("profile", grid=list(p_grid), scales=list(scales)):
            if jobs > 1 and self.tracer is None and self.ledger is None:
                runs = self._profile_parallel(p_grid, kinds, scales, jobs)
                if runs is not None:
                    return runs
            runs = 0
            for scale in scales:
                record = self._measured_run(
                    advisor=None, scale=scale, label=f"reference@{scale}"
                ).record
                self.db.add_run(record)
                if scale == max(scales):
                    self.db.set_dag(self.workload.name, WorkloadDag.from_run(record))
                runs += 1
                for kind in kinds:
                    for p in p_grid:
                        outcome = self._measured_run(
                            advisor=ProfilingAdvisor(kind, p, override_fixed=True),
                            scale=scale,
                            label=f"profile-{kind}-{p}@{scale}",
                        )
                        self.db.add_run(outcome.record)
                        runs += 1
        return runs

    def _resolve_jobs(self, jobs: Optional[int]) -> int:
        if jobs is None:
            return self.base_conf.physical_parallelism
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        return jobs

    def _profile_parallel(
        self,
        p_grid: Sequence[int],
        kinds: Sequence[str],
        scales: Sequence[float],
        jobs: int,
    ) -> Optional[int]:
        """Fan the sweep over worker processes; None = not picklable."""
        from repro.chopper import parallel as par

        if not par.picklable(self.workload, self.cluster_factory, self.base_conf):
            return None
        base = (self.workload, self.cluster_factory, self.base_conf)
        specs: List[par.RunSpec] = []
        for scale in scales:
            specs.append(base + (None, scale, f"reference@{scale}", False))
            for kind in kinds:
                for p in p_grid:
                    specs.append(base + (
                        ("profiling", kind, p), scale,
                        f"profile-{kind}-{p}@{scale}", False,
                    ))
        results = iter(
            par.run_specs(specs, jobs, telemetry=self._telemetry_options())
        )
        # Merge in the exact order the serial loop would have produced.
        for scale in scales:
            _, record, _, tele = next(results)
            self._merge_telemetry(tele)
            self.db.add_run(record)
            if scale == max(scales):
                self.db.set_dag(self.workload.name, WorkloadDag.from_run(record))
            for _kind in kinds:
                for _p in p_grid:
                    _, record, _, tele = next(results)
                    self._merge_telemetry(tele)
                    self.db.add_run(record)
        return len(specs)

    # ------------------------------------------------------------------
    # Step 2: model training
    # ------------------------------------------------------------------

    def train(self) -> int:
        """Fit Eq. 1-2 models for every stage; returns models trained."""
        if not self.db.has_dag(self.workload.name):
            raise ModelError("profile() must run before train()")
        trained = 0
        with self._phase("train"):
            for stage in self.db.dag(self.workload.name).stages:
                observations = self.db.observations(
                    self.workload.name, signature=stage.signature
                )
                try:
                    models = fit_models_by_partitioner(observations)
                except ModelError:
                    continue
                for kind, model in models.items():
                    self.db.set_model(self.workload.name, stage.signature, kind, model)
                    trained += 1
        if trained == 0:
            raise ModelError("training produced no models; profile more")
        return trained

    # ------------------------------------------------------------------
    # Step 3: optimization / config generation
    # ------------------------------------------------------------------

    def optimize(self, mode: str = "global", scale: float = 1.0) -> WorkloadConfig:
        """Generate the workload config file (Algorithm 3 or 2)."""
        d_total = self.workload.virtual_bytes(scale)
        assert self.weights is not None
        with self._phase("optimize", mode=mode):
            if mode == "global":
                schemes = get_global_par(
                    self.db, self.workload.name, d_total, self.weights,
                    gamma=self.gamma,
                    cluster_parallelism=self.cluster_factory().total_cores,
                )
                if self.tracer is not None:
                    for s in schemes:
                        self.tracer.instant(
                            f"scheme:{s.signature[:12]}", "chopper.optimizer",
                            signature=s.signature, kind=s.scheme.kind,
                            P=s.scheme.num_partitions, cost=round(s.cost, 4),
                            group=s.group,
                        )
            elif mode == "per-stage":
                schemes = get_workload_par(
                    self.db, self.workload.name, d_total, self.weights,
                    tracer=self.tracer,
                )
            else:
                raise ModelError(f"unknown optimization mode {mode!r}")
        return WorkloadConfig.from_schemes(self.workload.name, schemes)

    # ------------------------------------------------------------------
    # Step 4: measured runs
    # ------------------------------------------------------------------

    def run_vanilla(self, scale: float = 1.0) -> RunOutcome:
        """The paper's baseline: fixed default parallelism, hash, no advisor."""
        return self._measured_run(advisor=None, scale=scale, label="vanilla")

    def run_chopper(
        self,
        config: Optional[WorkloadConfig] = None,
        mode: str = "global",
        scale: float = 1.0,
    ) -> RunOutcome:
        """The CHOPPER run: config-driven advisor + co-partition scheduling."""
        if config is None:
            config = self.optimize(mode=mode, scale=scale)
        advisor = ChopperAdvisor(config)
        return self._measured_run(
            advisor=advisor, scale=scale, label="chopper", copartition=True
        )

    def compare(
        self, mode: str = "global", scale: float = 1.0,
        jobs: Optional[int] = None,
    ) -> Tuple[RunOutcome, RunOutcome]:
        """(vanilla, chopper) outcomes at the same scale.

        ``jobs`` > 1 runs the two independent measured runs in worker
        processes (the config is still optimized up front, on the
        driver); their outcomes carry ``ctx=None``.
        """
        jobs = self._resolve_jobs(jobs)
        if jobs > 1 and self.tracer is None and self.ledger is None:
            outcomes = self._compare_parallel(mode, scale, jobs)
            if outcomes is not None:
                return outcomes
        return self.run_vanilla(scale), self.run_chopper(mode=mode, scale=scale)

    def _compare_parallel(
        self, mode: str, scale: float, jobs: int
    ) -> Optional[Tuple[RunOutcome, RunOutcome]]:
        from repro.chopper import parallel as par

        config = self.optimize(mode=mode, scale=scale)
        if not par.picklable(
            self.workload, self.cluster_factory, self.base_conf, config
        ):
            return None
        base = (self.workload, self.cluster_factory, self.base_conf)
        specs = [
            base + (None, scale, "vanilla", False),
            base + (("config", config), scale, "chopper", True),
        ]
        results = par.run_specs(
            specs, jobs, telemetry=self._telemetry_options()
        )
        outcomes = []
        for label, record, result, tele in results:
            self._merge_telemetry(tele)
            outcomes.append(
                RunOutcome(label=label, record=record, result=result, ctx=None)
            )
        return outcomes[0], outcomes[1]

    # ------------------------------------------------------------------

    def _phase(self, label: str, **args):
        """A tracer phase span, or a no-op when untraced."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.phase(label, **args)

    def _telemetry_options(self) -> Optional[Tuple[bool, bool, bool]]:
        """(want metrics, want logs, want profile) for worker runs."""
        want = (
            self.metrics_registry is not None,
            self.event_log is not None,
            self.profiler is not None,
        )
        return want if any(want) else None

    def _merge_telemetry(self, tele: Optional[dict]) -> None:
        """Fold one worker run's shipped telemetry into the shared sinks.

        Called in the serial loop's order, so repeated sweeps merge
        byte-identically. Pool-dispatched runs carry a deterministic
        ``worker`` slot label: their metric deltas land twice — once in
        the unlabeled totals (matching what a serial sweep would have
        recorded) and once under ``worker=wN`` so per-worker series
        survive aggregation; their log records gain a ``worker`` field.
        """
        if not tele:
            return
        worker = tele.get("worker")
        state = tele.get("metrics")
        if state is not None and self.metrics_registry is not None:
            self.metrics_registry.merge_state(state)
            if worker is not None:
                self.metrics_registry.merge_state(
                    state, extra_labels={"worker": worker}
                )
        records = tele.get("logs")
        if records is not None and self.event_log is not None:
            self.event_log.extend(records, worker=worker)
        rolled = tele.get("profile")
        if rolled is not None and self.profiler is not None:
            self.profiler.merge(rolled)

    def _measured_run(
        self,
        advisor,
        scale: float,
        label: str,
        copartition: bool = False,
    ) -> RunOutcome:
        conf = replace(self.base_conf, copartition_scheduling=copartition)
        # Each metered run writes into a fresh registry that is merged
        # into the shared one afterwards, so a serial sweep and a
        # worker-pool sweep aggregate through the same float-operation
        # sequence (worker runs ship the same dump_state payload).
        run_registry = (
            MetricsRegistry() if self.metrics_registry is not None else None
        )
        run_profiler: Optional[ResourceProfiler] = None
        if self.profiler is not None:
            run_profiler = ResourceProfiler()
            run_profiler.start()
        ctx = AnalyticsContext(
            self.cluster_factory(), conf,
            metrics_registry=run_registry,
            event_log=self.event_log,
            profiler=run_profiler,
        )
        if self.event_log is not None:
            self.event_log.bind(run=label)
            self.event_log.emit(
                "INFO", "chopper", "measured_run", label=label, scale=scale
            )
        if advisor is not None:
            ctx.set_advisor(advisor)
        collector = StatisticsCollector(
            self.workload.name, self.workload.virtual_bytes(scale)
        )
        ledger_collector = (
            LedgerCollector() if self.ledger is not None else None
        )
        with ExitStack() as stack:
            if self.tracer is not None:
                # Each measured run gets its own context (sim clock starts
                # at 0), so shift its spans past the trace horizon — the
                # pipeline renders as consecutive runs on one timeline.
                ctx.obs.set_tracer(self.tracer)
                stack.enter_context(self.tracer.scope(label, scale=scale))
            if ledger_collector is not None:
                stack.enter_context(ledger_collector.attached(ctx))
            stack.enter_context(collector.attached(ctx))
            result = self.workload.run(ctx, scale=scale)
        record = collector.record
        record.total_time = ctx.now
        if run_registry is not None:
            assert self.metrics_registry is not None
            self.metrics_registry.merge_state(run_registry.dump_state())
        profile_rollup = None
        if run_profiler is not None:
            run_profiler.stop()
            profile_rollup = run_profiler.rollup()
            assert self.profiler is not None
            self.profiler.merge(profile_rollup)
        if self.tracer is not None:
            for event in ctx.plan_events:
                self.tracer.instant(
                    "plan-optimized", "relational.plan",
                    rule_hits=event.get("rule_hits", {}),
                    nodes_before=event.get("nodes_before"),
                    nodes_after=event.get("nodes_after"),
                )
        if ledger_collector is not None:
            assert self.ledger is not None
            body = ledger_collector.body()
            body["scale"] = scale
            body["input_bytes"] = self.workload.virtual_bytes(scale)
            body["config"] = dataclasses.asdict(conf)
            body["cluster"] = dict(ctx.obs.nodes)
            body["chopper"] = self._advisor_summary(advisor)
            body["model_eval"] = self._model_eval(record)
            if profile_rollup is not None:
                # Host-resource measurements are real (wall clock, RSS),
                # hence non-deterministic; identity checks must drop
                # this key before hashing entries.
                body["profile"] = profile_rollup
            self.ledger.append(self.workload.name, label, body)
        return RunOutcome(label=label, record=record, result=result, ctx=ctx)

    @staticmethod
    def _advisor_summary(advisor) -> Optional[dict]:
        """What partitioning advice drove the run, for the ledger entry."""
        if advisor is None:
            return None
        if isinstance(advisor, ChopperAdvisor):
            return {
                "advisor": "chopper",
                "schemes": [
                    e.to_dict() for e in advisor.config.entries.values()
                ],
            }
        if isinstance(advisor, ProfilingAdvisor):
            return {
                "advisor": "profiling",
                "kind": advisor.scheme.kind,
                "P": advisor.scheme.num_partitions,
            }
        return {"advisor": type(advisor).__name__}

    def _model_eval(self, record: RunRecord) -> Optional[dict]:
        """Predicted-vs-actual per stage, where trained models exist.

        None before train(); after it, one row per observed stage whose
        (signature, partitioner kind) has a fitted model — actuals from
        this run, predictions and fit quality (R² on the DB's training
        samples) from :mod:`repro.chopper.model`.
        """
        rows = []
        for o in record.observations:
            kind = o.partitioner_kind or "hash"
            if not self.db.has_model(record.workload, o.signature, kind):
                continue
            model = self.db.model(record.workload, o.signature, kind)
            predicted_time = model.predict_time(o.input_bytes, o.num_partitions)
            predicted_shuffle = model.predict_shuffle(
                o.input_bytes, o.num_partitions
            )
            training = self.db.observations(
                record.workload, signature=o.signature, partitioner_kind=kind
            )
            rows.append(
                {
                    "signature": o.signature,
                    "partitioner": kind,
                    "P": o.num_partitions,
                    "input_bytes": o.input_bytes,
                    "predicted_time": predicted_time,
                    "actual_time": o.duration,
                    "time_residual": o.duration - predicted_time,
                    "predicted_shuffle": predicted_shuffle,
                    "actual_shuffle": o.shuffle_bytes,
                    "shuffle_residual": o.shuffle_bytes - predicted_shuffle,
                    "r2_time": model.r2_time(training),
                    "r2_shuffle": model.r2_shuffle(training),
                    "n_training_samples": model.n_samples,
                }
            )
        return {"per_stage": rows} if rows else None


def improvement(vanilla: RunOutcome, chopper: RunOutcome) -> float:
    """Fractional execution-time improvement of CHOPPER over vanilla."""
    if vanilla.total_time <= 0:
        return 0.0
    return 1.0 - chopper.total_time / vanilla.total_time


def stage_table(outcome: RunOutcome) -> List[Tuple[int, str, float, float, int]]:
    """(stage idx, name-ish signature, duration, shuffle bytes, partitions)."""
    return [
        (o.order, o.signature, o.duration, o.shuffle_bytes, o.num_partitions)
        for o in outcome.record.observations
    ]

"""Run history: persistent event logs, like Spark's history server files.

A :class:`HistoryLogger` subscribes to a context's listener bus and
appends one JSON line per stage/job event to a log file. A history file
can later be re-read into :class:`~repro.engine.listener.StageStats`
summaries — which is how CHOPPER trains from *production* runs that
happened in other processes ("CHOPPER also remembers the statistics from
the user workload execution in a production environment", §III-B):

    HistoryLogger.attach(ctx, "run42.jsonl")      # during the run
    ...
    record = load_history_record("run42.jsonl", workload="kmeans",
                                 input_bytes=21.8 * GB)
    db.add_run(record)                            # offline, later

Task-level metrics are folded into per-stage aggregates in the log to
keep files small; the per-stage fields are exactly what the workload DB
consumes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union

from repro.chopper.stats import RunRecord, StageObservation
from repro.common.errors import ConfigurationError
from repro.engine.context import AnalyticsContext
from repro.engine.listener import JobStats, Listener, StageStats

FORMAT_VERSION = 1


class HistoryLogger(Listener):
    """Streams stage/job completions to a JSONL history file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._order = 0
        self._ctx: Optional[AnalyticsContext] = None
        self.path.write_text(
            json.dumps({"event": "header", "version": FORMAT_VERSION}) + "\n"
        )

    @classmethod
    def attach(cls, ctx: AnalyticsContext, path: Union[str, Path]) -> "HistoryLogger":
        logger = cls(path)
        ctx.listener_bus.add(logger)
        logger._ctx = ctx
        return logger

    def detach(self) -> None:
        if self._ctx is not None:
            self._ctx.listener_bus.remove(self)
            self._ctx = None

    # ------------------------------------------------------------------

    def on_stage_completed(self, stage_stats: StageStats) -> None:
        if stage_stats.attempt > 0:
            # Skip partial lineage-recovery re-runs, matching the
            # in-memory StatisticsCollector: replayed histories must
            # train the same models a live run would.
            return
        observation = StageObservation.from_stage_stats(stage_stats, self._order)
        self._order += 1
        payload = {"event": "stage", **observation.to_dict()}
        # Extra fields not in the observation, useful for reports.
        payload["name"] = stage_stats.name
        payload["submitted_at"] = stage_stats.submitted_at
        payload["completed_at"] = stage_stats.completed_at
        payload["skew"] = stage_stats.skew()
        payload["remote_shuffle_read"] = stage_stats.remote_shuffle_read
        self._append(payload)

    def on_job_end(self, job_stats: JobStats) -> None:
        self._append(
            {
                "event": "job",
                "job_id": job_stats.job_id,
                "submitted_at": job_stats.submitted_at,
                "completed_at": job_stats.completed_at,
                "stages": len(job_stats.stages),
            }
        )

    def _append(self, payload: dict) -> None:
        with self.path.open("a") as fh:
            fh.write(json.dumps(payload) + "\n")


def read_history(path: Union[str, Path]) -> List[dict]:
    """All events of a history file, validated against the format header."""
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise ConfigurationError(f"empty history file {path}")
    header = json.loads(lines[0])
    if header.get("event") != "header":
        raise ConfigurationError(f"{path} is not a history file (no header)")
    if header.get("version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"history version {header.get('version')} unsupported "
            f"(expected {FORMAT_VERSION})"
        )
    return [json.loads(line) for line in lines[1:]]


def load_history_record(
    path: Union[str, Path], workload: str, input_bytes: float
) -> RunRecord:
    """Rebuild a :class:`RunRecord` from a history file (for the DB)."""
    record = RunRecord(workload=workload, input_bytes=input_bytes)
    last_end = 0.0
    first_start: Optional[float] = None
    for event in read_history(path):
        if event.get("event") != "stage":
            continue
        fields = {
            k: v for k, v in event.items()
            if k in StageObservation.__dataclass_fields__
        }
        record.observations.append(StageObservation.from_dict(fields))
        if first_start is None:
            first_start = event.get("submitted_at", 0.0)
        last_end = max(last_end, event.get("completed_at", 0.0))
    record.total_time = last_end - (first_start or 0.0)
    return record

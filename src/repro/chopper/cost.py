"""The optimization objective — the paper's Equations 3 and 4.

    cost = alpha * t_exe / t_default + beta * s_shuffle / s_default   (Eq. 3)
    min over P (and over partitioner kind, in Algorithm 1)            (Eq. 4)

``t_default`` / ``s_default`` are the stage's time and shuffle volume
under the *default* parallelism, which normalizes the two factors onto a
common scale; alpha = beta = 0.5 by default, "making them equally
important" (§III-B).

:func:`get_min_par` implements the inner minimization: a coarse-to-fine
integer grid search over P within the model's trusted range. (The paper
calls the whole step "solving a simple linear programming problem"; with
a fixed D the objective is a univariate polynomial in P, and an exact
grid search over integer P is both simpler and exact.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.common.errors import ModelError
from repro.chopper.model import StagePerfModel

_EPS = 1e-9


@dataclass(frozen=True)
class CostWeights:
    """alpha/beta of Eq. 3 plus the default parallelism used to normalize.

    ``shuffle_significance`` is a deviation from the paper, documented in
    DESIGN.md: because Eq. 3 normalizes shuffle volume by its own default,
    a stage whose shuffle is physically negligible (kilobytes against a
    multi-gigabyte input) can still see its s-term ratio dwarf the time
    term and drag the optimum toward tiny P. When the predicted default
    shuffle volume is below ``shuffle_significance x D``, the stage is
    treated as time-dominated and costed on time alone.
    """

    alpha: float = 0.5
    beta: float = 0.5
    default_parallelism: int = 300
    shuffle_significance: float = 1e-3

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0 or self.alpha + self.beta <= 0:
            raise ModelError("alpha/beta must be non-negative, not both zero")
        if self.default_parallelism < 1:
            raise ModelError("default_parallelism must be >= 1")
        if self.shuffle_significance < 0:
            raise ModelError("shuffle_significance must be >= 0")


def stage_cost(
    model: StagePerfModel,
    d: float,
    p: float,
    weights: CostWeights,
    t_default: Optional[float] = None,
    s_default: Optional[float] = None,
) -> float:
    """Eq. 3 for one stage at input size ``d`` and parallelism ``p``.

    Defaults are the model's own predictions at the default parallelism
    when not supplied. A stage with no shuffle (s_default ~ 0) is costed
    on time alone, renormalized so costs stay comparable.
    """
    if t_default is None:
        t_default = model.predict_time(d, weights.default_parallelism)
    if s_default is None:
        s_default = model.predict_shuffle(d, weights.default_parallelism)

    t = model.predict_time(d, p)
    s = model.predict_shuffle(d, p)

    t_term = t / t_default if t_default > _EPS else (0.0 if t <= _EPS else np.inf)
    significant = s_default > max(_EPS, weights.shuffle_significance * d)
    if significant:
        return weights.alpha * t_term + weights.beta * (s / s_default)
    # No (or negligible) shuffle baseline: time-only objective on the
    # full weight, so costs stay comparable across stages.
    return (weights.alpha + weights.beta) * t_term


def get_min_par(
    model: StagePerfModel,
    d: float,
    weights: CostWeights,
    p_min: Optional[int] = None,
    p_max: Optional[int] = None,
    coarse_points: int = 48,
    t_default: Optional[float] = None,
    s_default: Optional[float] = None,
) -> Tuple[int, float]:
    """Eq. 4: the P minimizing Eq. 3 for this stage model at size ``d``.

    Coarse pass over ``coarse_points`` values spanning the trusted range,
    then an exhaustive fine pass around the best coarse candidate.
    Returns ``(best_p, best_cost)``.

    ``t_default`` / ``s_default`` are the Eq. 3 baselines — the stage
    under the *default setup*. Pass them explicitly when comparing
    partitioner kinds (Algorithm 1) so both kinds are normalized by the
    same (hash, default-parallelism) baseline; otherwise this model's own
    default prediction is used.
    """
    lo, hi = model.search_bounds()
    if p_min is not None:
        lo = max(lo, p_min)
    if p_max is not None:
        hi = min(hi, p_max)
    if hi < lo:
        raise ModelError(f"empty partition search range [{p_min}, {p_max}]")

    if t_default is None:
        t_default = model.predict_time(d, weights.default_parallelism)
    if s_default is None:
        s_default = model.predict_shuffle(d, weights.default_parallelism)

    def cost_at(p: int) -> float:
        return stage_cost(model, d, float(p), weights, t_default, s_default)

    candidates = np.unique(
        np.clip(np.linspace(lo, hi, num=min(coarse_points, hi - lo + 1)), lo, hi)
        .round()
        .astype(int)
    )
    best_p = int(candidates[0])
    best_cost = cost_at(best_p)
    for p in candidates[1:]:
        c = cost_at(int(p))
        if c < best_cost:
            best_p, best_cost = int(p), c

    # Fine pass: exhaustive within one coarse step around the minimum.
    step = max(1, (hi - lo) // max(1, len(candidates) - 1))
    for p in range(max(lo, best_p - step), min(hi, best_p + step) + 1):
        c = cost_at(p)
        if c < best_cost:
            best_p, best_cost = p, c
    return best_p, best_cost


def repartition_cost(
    d: float,
    p: int,
    per_byte: float = 2.0e-9,
    per_task: float = 0.25,
    cluster_parallelism: int = 136,
) -> float:
    """Estimated wall-clock cost of one inserted repartition phase.

    A repartition moves ~``d`` bytes through an identity shuffle and
    launches ``p`` tasks; both terms amortize over the cluster's cores.
    Used by Algorithm 3's gamma test for user-fixed stages.
    """
    if d < 0 or p < 1:
        raise ModelError("repartition_cost needs d >= 0 and p >= 1")
    return (d * per_byte * 2.0 + p * per_task) / max(1, cluster_parallelism)

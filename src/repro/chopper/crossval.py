"""Cross-validation of the Eq. 1-2 stage models.

A config is only as trustworthy as the models behind it. This module
estimates each model's *generalization* error with k-fold
cross-validation over the stage's observations (grouped by (D, P) cell so
repeated identical measurements can't leak across folds) and rolls the
result into a per-workload quality report the runner can gate on::

    report = cross_validate(db, "kmeans")
    print(report.summary())
    if report.worst_mape > 0.5:
        ...profile more before trusting optimize()...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.common.errors import ModelError
from repro.chopper.model import StagePerfModel
from repro.chopper.stats import StageObservation
from repro.chopper.workload_db import WorkloadDB


@dataclass
class StageCvResult:
    """Cross-validated quality of one (stage, partitioner kind) model."""

    signature: str
    partitioner_kind: str
    n_observations: int
    n_folds: int
    mape: float  # median absolute % error on held-out folds

    @property
    def reliable(self) -> bool:
        """Rule of thumb: held-out error under 35 %."""
        return self.mape < 0.35


@dataclass
class CvReport:
    """Cross-validation results for a whole workload."""

    workload: str
    results: List[StageCvResult] = field(default_factory=list)

    @property
    def worst_mape(self) -> float:
        return max((r.mape for r in self.results), default=0.0)

    @property
    def median_mape(self) -> float:
        if not self.results:
            return 0.0
        return float(np.median([r.mape for r in self.results]))

    def unreliable(self) -> List[StageCvResult]:
        return [r for r in self.results if not r.reliable]

    def summary(self) -> str:
        lines = [
            f"cross-validation ({self.workload}): median held-out error "
            f"{self.median_mape:.1%}, worst {self.worst_mape:.1%}"
        ]
        for r in sorted(self.results, key=lambda r: -r.mape):
            flag = "  " if r.reliable else "!!"
            lines.append(
                f"  {flag} {r.signature[:10]} [{r.partitioner_kind}] "
                f"mape={r.mape:.1%} (n={r.n_observations}, k={r.n_folds})"
            )
        return "\n".join(lines)


def cross_validate_stage(
    observations: List[StageObservation], k: int = 4
) -> Tuple[float, int]:
    """Held-out MAPE of a stage model via grouped k-fold CV.

    Folds are formed over distinct (D, P) cells — identical repeated
    measurements stay together, so the score reflects interpolation to
    *unseen* configurations, not memorization. Returns (mape, folds run).
    """
    cells: Dict[Tuple[float, int], List[StageObservation]] = {}
    for obs in observations:
        cells.setdefault(
            (round(obs.input_bytes, 3), obs.num_partitions), []
        ).append(obs)
    keys = sorted(cells)
    if len(keys) < 3:
        raise ModelError("need observations at >= 3 distinct (D, P) cells")
    k = min(k, len(keys))

    errors: List[float] = []
    folds = 0
    for fold in range(k):
        held = {key for i, key in enumerate(keys) if i % k == fold}
        train = [o for key in keys if key not in held for o in cells[key]]
        test = [o for key in held for o in cells[key]]
        if len(train) < 2 or not test:
            continue
        model = StagePerfModel.fit(train)
        for obs in test:
            predicted = model.predict_time(obs.input_bytes, obs.num_partitions)
            truth = max(obs.duration, 1e-9)
            errors.append(abs(predicted - truth) / truth)
        folds += 1
    if not errors:
        raise ModelError("cross-validation produced no held-out errors")
    return float(np.median(errors)), folds


def cross_validate(db: WorkloadDB, workload: str, k: int = 4) -> CvReport:
    """Cross-validate every trainable stage model of a workload."""
    report = CvReport(workload=workload)
    for stage in db.dag(workload).stages:
        for kind in ("hash", "range"):
            observations = [
                o for o in db.observations(workload, signature=stage.signature)
                if o.partitioner_kind in (kind, None)
            ]
            try:
                mape, folds = cross_validate_stage(observations, k=k)
            except ModelError:
                continue
            report.results.append(
                StageCvResult(
                    signature=stage.signature,
                    partitioner_kind=kind,
                    n_observations=len(observations),
                    n_folds=folds,
                    mape=mape,
                )
            )
    return report

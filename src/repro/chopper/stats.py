"""Statistics collector: CHOPPER's tap into the engine's listener bus.

The paper's collector "communicates with Spark to gather runtime
information and statistics" (§III). Here it subscribes to the engine's
listener bus and condenses every completed stage into a
:class:`StageObservation` — the row format the workload DB stores and the
models train on: input size ``D``, partition count ``P``, partitioner
kind, execution time, and shuffle volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.context import AnalyticsContext
from repro.engine.listener import Listener, StageStats


@dataclass(frozen=True)
class StageObservation:
    """One training sample for a stage's performance models."""

    signature: str
    kind: str
    partitioner_kind: Optional[str]
    input_bytes: float  # D
    num_partitions: int  # P
    duration: float  # t_exe
    shuffle_bytes: float  # s_shuffle (max of read/write, as in the paper)
    order: int  # position of the stage within the workload run
    parent_signatures: tuple = ()
    cogroup_sides: int = 0
    user_fixed: bool = False
    source_signatures: tuple = ()

    @classmethod
    def from_stage_stats(cls, stats: StageStats, order: int) -> "StageObservation":
        return cls(
            signature=stats.signature,
            kind=stats.kind,
            partitioner_kind=stats.partitioner_kind,
            input_bytes=stats.input_bytes,
            # AQE-re-planned stages ran their *adapted* physical task
            # count; that is the (duration, P) pair the offline model
            # should learn from, not the static plan it replaced.
            num_partitions=stats.adapted_num_partitions or stats.num_partitions,
            duration=stats.duration,
            shuffle_bytes=stats.shuffle_bytes,
            order=order,
            parent_signatures=tuple(stats.parent_signatures),
            cogroup_sides=stats.cogroup_sides,
            user_fixed=stats.user_fixed,
            source_signatures=tuple(stats.source_signatures),
        )

    def to_dict(self) -> dict:
        return {
            "signature": self.signature,
            "kind": self.kind,
            "partitioner_kind": self.partitioner_kind,
            "input_bytes": self.input_bytes,
            "num_partitions": self.num_partitions,
            "duration": self.duration,
            "shuffle_bytes": self.shuffle_bytes,
            "order": self.order,
            "parent_signatures": list(self.parent_signatures),
            "cogroup_sides": self.cogroup_sides,
            "user_fixed": self.user_fixed,
            "source_signatures": list(self.source_signatures),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StageObservation":
        payload = dict(payload)
        payload["parent_signatures"] = tuple(payload.get("parent_signatures", ()))
        payload["source_signatures"] = tuple(payload.get("source_signatures", ()))
        return cls(**payload)


@dataclass
class RunRecord:
    """All observations of one workload run, plus the run's totals."""

    workload: str
    input_bytes: float
    observations: List[StageObservation] = field(default_factory=list)
    total_time: float = 0.0

    @property
    def stage_count(self) -> int:
        return len(self.observations)

    def by_signature(self) -> Dict[str, List[StageObservation]]:
        grouped: Dict[str, List[StageObservation]] = {}
        for obs in self.observations:
            grouped.setdefault(obs.signature, []).append(obs)
        return grouped


class StatisticsCollector(Listener):
    """Records stage completions for the duration of one workload run.

    Usage::

        collector = StatisticsCollector("kmeans", input_bytes=D)
        with collector.attached(ctx):
            workload.run(ctx)
        record = collector.finish(ctx)
    """

    def __init__(self, workload: str, input_bytes: float) -> None:
        self.record = RunRecord(workload=workload, input_bytes=input_bytes)
        self._order = 0
        self._started_at: Optional[float] = None
        self._ctx: Optional[AnalyticsContext] = None

    def on_stage_completed(self, stage_stats: StageStats) -> None:
        if stage_stats.attempt > 0:
            # Partial resubmission after a fetch failure: only the lost
            # map partitions re-ran, so (D, P, t_exe) would mistrain the
            # models. Keep the DB to clean, full-stage observations.
            return
        self.record.observations.append(
            StageObservation.from_stage_stats(stage_stats, self._order)
        )
        self._order += 1

    def attach(self, ctx: AnalyticsContext) -> "StatisticsCollector":
        ctx.listener_bus.add(self)
        self._ctx = ctx
        self._started_at = ctx.now
        return self

    def finish(self, ctx: Optional[AnalyticsContext] = None) -> RunRecord:
        ctx = ctx or self._ctx
        assert ctx is not None, "finish() before attach()"
        ctx.listener_bus.remove(self)
        self.record.total_time = ctx.now - (self._started_at or 0.0)
        self._ctx = None
        return self.record

    def attached(self, ctx: AnalyticsContext) -> "_CollectorScope":
        return _CollectorScope(self, ctx)


class _CollectorScope:
    def __init__(self, collector: StatisticsCollector, ctx: AnalyticsContext) -> None:
        self.collector = collector
        self.ctx = ctx

    def __enter__(self) -> StatisticsCollector:
        return self.collector.attach(self.ctx)

    def __exit__(self, *exc) -> None:
        if self.collector._ctx is not None:
            self.collector.finish(self.ctx)

"""Online adaptation: dynamic config updates during a production run.

§III-A: "Our system allows dynamic updates to the Spark configuration
file whenever more runtime information is obtained ... DAGScheduler
periodically checks the updated configuration file and uses the updated
partitioning scheme if available."

:class:`OnlineChopper` wires that loop together for one context:

* it listens to stage completions and feeds every observation into the
  workload DB (production statistics, §III-B: "CHOPPER also remembers
  the statistics from the user workload execution in a production
  environment");
* every ``refit_every`` completed stages it refits the models and
  regenerates the config via Algorithm 3;
* the config object is updated **in place**, so the installed
  :class:`ChopperAdvisor` picks the new tuples up at the next job
  submission — iterative workloads adapt between iterations.

Use it as a context manager around the workload run::

    with OnlineChopper(runner_db, "kmeans", d_total, weights).attach(ctx):
        workload.run(ctx)
"""

from __future__ import annotations

from typing import Optional

from repro.chopper.advisor import ChopperAdvisor
from repro.chopper.config_gen import WorkloadConfig
from repro.chopper.cost import CostWeights
from repro.chopper.global_opt import GAMMA_DEFAULT, get_global_par
from repro.chopper.model import fit_models_by_partitioner
from repro.chopper.stats import StageObservation
from repro.chopper.workload_db import WorkloadDB
from repro.common.errors import ModelError
from repro.engine.context import AnalyticsContext
from repro.engine.listener import Listener, StageStats


class OnlineChopper(Listener):
    """Feeds production observations back into the optimizer, live."""

    def __init__(
        self,
        db: WorkloadDB,
        workload: str,
        d_total: float,
        weights: CostWeights,
        gamma: float = GAMMA_DEFAULT,
        cluster_parallelism: int = 136,
        refit_every: int = 5,
    ) -> None:
        if refit_every < 1:
            raise ModelError("refit_every must be >= 1")
        self.db = db
        self.workload = workload
        self.d_total = d_total
        self.weights = weights
        self.gamma = gamma
        self.cluster_parallelism = cluster_parallelism
        self.refit_every = refit_every

        self.config = self._generate()
        self.advisor = ChopperAdvisor(self.config)
        self.refits = 0
        self._since_refit = 0
        self._order = 0
        self._ctx: Optional[AnalyticsContext] = None

    # ------------------------------------------------------------------

    def attach(self, ctx: AnalyticsContext) -> "_OnlineScope":
        ctx.set_advisor(self.advisor)
        ctx.listener_bus.add(self)
        self._ctx = ctx
        return _OnlineScope(self, ctx)

    def detach(self, ctx: AnalyticsContext) -> None:
        ctx.listener_bus.remove(self)
        ctx.set_advisor(None)
        self._ctx = None

    # ------------------------------------------------------------------

    def on_stage_completed(self, stage_stats: StageStats) -> None:
        observation = StageObservation.from_stage_stats(stage_stats, self._order)
        self._order += 1
        self.db.add_observation(self.workload, observation)
        self._since_refit += 1
        if self._since_refit >= self.refit_every:
            self._since_refit = 0
            self.refresh()

    def refresh(self) -> None:
        """Refit models on all data (offline + production) and regenerate
        the config in place — the paper's "dynamic update" step."""
        known = self.db.dag(self.workload).signatures()
        for signature in known:
            observations = self.db.observations(self.workload, signature=signature)
            try:
                models = fit_models_by_partitioner(observations)
            except ModelError:
                continue
            for kind, model in models.items():
                self.db.set_model(self.workload, signature, kind, model)
        new_config = self._generate()
        # In-place swap: the installed advisor reads self.config.entries
        # at every job submission.
        self.config.entries.clear()
        self.config.entries.update(new_config.entries)
        self.refits += 1

    def _generate(self) -> WorkloadConfig:
        schemes = get_global_par(
            self.db, self.workload, self.d_total, self.weights,
            gamma=self.gamma, cluster_parallelism=self.cluster_parallelism,
        )
        return WorkloadConfig.from_schemes(self.workload, schemes)


class _OnlineScope:
    def __init__(self, online: OnlineChopper, ctx: AnalyticsContext) -> None:
        self.online = online
        self.ctx = ctx

    def __enter__(self) -> OnlineChopper:
        return self.online

    def __exit__(self, *exc) -> None:
        self.online.detach(self.ctx)

"""Cluster assembly and the paper's testbed factory.

:func:`paper_cluster` reconstructs the 6-node heterogeneous cluster of
CHOPPER §II-B:

* nodes A, B, C — 32 cores @ 2.0 GHz (AMD), 64 GB RAM, 10 Gbps Ethernet;
* nodes D, E — 8 cores @ 2.3 GHz (Intel), 48 GB RAM, 1 Gbps Ethernet;
* node F — 8 cores @ 2.5 GHz (Intel), 64 GB RAM, 1 Gbps Ethernet, master.

F is the master; A-E are workers, each running one executor with 40 GB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.node import NodeSpec
from repro.cluster.topology import Topology
from repro.common.errors import ConfigurationError
from repro.common.units import GB

GBPS: float = 1e9 / 8.0  # bytes/second per Gbps


@dataclass
class Cluster:
    """A set of worker nodes plus a master, wired by a :class:`Topology`."""

    workers: List[NodeSpec]
    master: NodeSpec
    topology: Topology = field(init=False)

    def __post_init__(self) -> None:
        if not self.workers:
            raise ConfigurationError("cluster needs at least one worker")
        self.topology = Topology(self.workers + [self.master])

    @property
    def worker_names(self) -> List[str]:
        return [node.name for node in self.workers]

    @property
    def total_cores(self) -> int:
        return sum(node.cores for node in self.workers)

    @property
    def total_executor_memory(self) -> float:
        return sum(node.executor_memory for node in self.workers)

    def worker(self, name: str) -> NodeSpec:
        for node in self.workers:
            if node.name == name:
                return node
        raise ConfigurationError(f"no worker named {name!r}")

    def has_worker(self, name: str) -> bool:
        return any(node.name == name for node in self.workers)


def paper_cluster(executor_memory: float = 40.0 * GB) -> Cluster:
    """The CHOPPER paper's 6-node heterogeneous testbed (§II-B)."""
    big = dict(cores=32, speed=1.0, memory=64.0 * GB, net_bw=10.0 * GBPS)
    workers = [
        NodeSpec(name="A", executor_memory=executor_memory, **big),
        NodeSpec(name="B", executor_memory=executor_memory, **big),
        NodeSpec(name="C", executor_memory=executor_memory, **big),
        NodeSpec(
            name="D", cores=8, speed=2.3 / 2.0, memory=48.0 * GB,
            net_bw=1.0 * GBPS, executor_memory=executor_memory,
        ),
        NodeSpec(
            name="E", cores=8, speed=2.3 / 2.0, memory=48.0 * GB,
            net_bw=1.0 * GBPS, executor_memory=executor_memory,
        ),
    ]
    master = NodeSpec(
        name="F", cores=8, speed=2.5 / 2.0, memory=64.0 * GB,
        net_bw=1.0 * GBPS, executor_memory=1.0 * GB,
    )
    return Cluster(workers=workers, master=master)


def uniform_cluster(
    n_workers: int = 4,
    cores: int = 8,
    speed: float = 1.0,
    memory: float = 32.0 * GB,
    net_bw: float = 10.0 * GBPS,
    executor_memory: Optional[float] = None,
) -> Cluster:
    """A homogeneous cluster, handy for tests and controlled ablations."""
    if n_workers < 1:
        raise ConfigurationError("need at least one worker")
    exec_mem = executor_memory if executor_memory is not None else memory * 0.75
    workers = [
        NodeSpec(
            name=f"w{i}", cores=cores, speed=speed, memory=memory,
            net_bw=net_bw, executor_memory=exec_mem,
        )
        for i in range(n_workers)
    ]
    master = NodeSpec(
        name="master", cores=cores, speed=speed, memory=memory,
        net_bw=net_bw, executor_memory=1.0 * GB,
    )
    return Cluster(workers=workers, master=master)

"""Cluster topology model: nodes, links, and the paper's 6-node testbed."""

from repro.cluster.node import NodeSpec
from repro.cluster.topology import Topology
from repro.cluster.cluster import Cluster, paper_cluster, uniform_cluster

__all__ = ["NodeSpec", "Topology", "Cluster", "paper_cluster", "uniform_cluster"]

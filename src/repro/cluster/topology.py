"""Network topology: pairwise bandwidth between nodes.

The model is endpoint-limited: the achievable bandwidth between two nodes
is the minimum of their NIC bandwidths (a 10 Gbps machine talking to a
1 Gbps machine moves data at 1 Gbps), which is exactly the asymmetry the
paper's testbed has. Loopback transfers use memory bandwidth and are
treated as effectively free relative to the network (a large constant).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.cluster.node import NodeSpec
from repro.common.errors import ConfigurationError

LOOPBACK_BW: float = 8.0 * 1024**3 * 4  # ~32 GB/s: same-node "transfer"


class Topology:
    """Pairwise bandwidth lookup over a set of nodes."""

    def __init__(self, nodes: Iterable[NodeSpec]) -> None:
        self._nodes: Dict[str, NodeSpec] = {}
        for node in nodes:
            if node.name in self._nodes:
                raise ConfigurationError(f"duplicate node name {node.name!r}")
            self._nodes[node.name] = node
        self._overrides: Dict[Tuple[str, str], float] = {}

    def node(self, name: str) -> NodeSpec:
        try:
            return self._nodes[name]
        except KeyError:
            raise ConfigurationError(f"unknown node {name!r}") from None

    def node_names(self) -> list[str]:
        return sorted(self._nodes)

    def set_link(self, a: str, b: str, bandwidth: float) -> None:
        """Override the bandwidth of one (undirected) link."""
        if bandwidth <= 0:
            raise ConfigurationError("link bandwidth must be positive")
        self.node(a), self.node(b)
        self._overrides[self._key(a, b)] = bandwidth

    def bandwidth(self, src: str, dst: str) -> float:
        """Bytes/second achievable from ``src`` to ``dst``."""
        if src == dst:
            return LOOPBACK_BW
        override = self._overrides.get(self._key(src, dst))
        if override is not None:
            return override
        return min(self.node(src).net_bw, self.node(dst).net_bw)

    def transfer_time(self, src: str, dst: str, nbytes: float) -> float:
        """Seconds to move ``nbytes`` from ``src`` to ``dst``."""
        if nbytes <= 0:
            return 0.0
        return nbytes / self.bandwidth(src, dst)

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

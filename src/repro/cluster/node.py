"""Per-node hardware description.

A :class:`NodeSpec` captures everything the cost model needs about a
machine: core count, relative compute speed, memory, NIC bandwidth, and
disk bandwidth. Heterogeneity (the paper's cluster mixes 32-core/10 Gbps
and 8-core/1 Gbps machines) enters the simulation purely through these
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.units import GB


@dataclass(frozen=True)
class NodeSpec:
    """Static hardware description of one cluster node.

    Attributes:
        name: unique node identifier (e.g. ``"A"``).
        cores: physical cores available to the executor.
        speed: relative per-core compute speed (1.0 = the paper's 2.0 GHz
            baseline); task compute time divides by this.
        memory: total RAM in bytes.
        net_bw: NIC bandwidth in bytes/second.
        disk_bw: sequential disk bandwidth in bytes/second.
        executor_memory: memory granted to the analytics executor in bytes
            (the paper gives every executor 40 GB regardless of node).
    """

    name: str
    cores: int
    speed: float
    memory: float
    net_bw: float
    disk_bw: float = 200.0 * 1024 * 1024
    executor_memory: float = 40.0 * GB

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError(f"node {self.name!r}: cores must be >= 1")
        if self.speed <= 0:
            raise ConfigurationError(f"node {self.name!r}: speed must be positive")
        if self.memory <= 0 or self.net_bw <= 0 or self.disk_bw <= 0:
            raise ConfigurationError(
                f"node {self.name!r}: memory/net_bw/disk_bw must be positive"
            )
        if self.executor_memory > self.memory:
            raise ConfigurationError(
                f"node {self.name!r}: executor memory exceeds node memory"
            )

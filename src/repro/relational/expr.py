"""Column expressions for the relational layer.

A tiny expression tree — columns, literals, arithmetic, comparisons,
boolean logic — evaluated per row (a tuple) against a schema. This is
what lets queries be written as ``col("amount") * 0.9 > lit(100)`` and
compiled into the engine's map/filter closures.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, Sequence, Tuple

from repro.common.errors import WorkloadError


class Expr:
    """Base expression; evaluate with :meth:`bind` against a schema."""

    def bind(self, schema: Sequence[str]) -> Callable[[Tuple], Any]:
        """Compile to a ``row -> value`` callable for the given schema."""
        raise NotImplementedError

    def references(self) -> set:
        """Column names this expression reads."""
        return set()

    def same_as(self, other: Any) -> bool:
        """Structural equality.

        ``==`` on expressions builds a comparison *expression* (so that
        ``col("a") == 3`` is a predicate), which makes ``expr in exprs``
        and ``exprs.index(expr)`` silently wrong. Use this for identity
        checks; the rewrite rules do.
        """
        raise NotImplementedError

    def substitute(self, mapping: Dict[str, "Expr"]) -> "Expr":
        """Replace column references per ``mapping`` (name -> expression).

        Used by the plan optimizer to push expressions through
        projections. Returns ``self`` when nothing changes.
        """
        return self

    @property
    def label(self) -> str:
        return repr(self)

    # -- operators ---------------------------------------------------------

    def _binary(self, other: Any, op: Callable, symbol: str) -> "Expr":
        return BinaryExpr(self, _as_expr(other), op, symbol)

    def __add__(self, other):
        return self._binary(other, operator.add, "+")

    def __radd__(self, other):
        return _as_expr(other)._binary(self, operator.add, "+")

    def __sub__(self, other):
        return self._binary(other, operator.sub, "-")

    def __rsub__(self, other):
        return _as_expr(other)._binary(self, operator.sub, "-")

    def __mul__(self, other):
        return self._binary(other, operator.mul, "*")

    def __rmul__(self, other):
        return _as_expr(other)._binary(self, operator.mul, "*")

    def __truediv__(self, other):
        return self._binary(other, operator.truediv, "/")

    def __mod__(self, other):
        return self._binary(other, operator.mod, "%")

    def __eq__(self, other):  # type: ignore[override]
        return self._binary(other, operator.eq, "==")

    def __ne__(self, other):  # type: ignore[override]
        return self._binary(other, operator.ne, "!=")

    def __lt__(self, other):
        return self._binary(other, operator.lt, "<")

    def __le__(self, other):
        return self._binary(other, operator.le, "<=")

    def __gt__(self, other):
        return self._binary(other, operator.gt, ">")

    def __ge__(self, other):
        return self._binary(other, operator.ge, ">=")

    def __and__(self, other):
        return self._binary(other, lambda a, b: bool(a) and bool(b), "and")

    def __or__(self, other):
        return self._binary(other, lambda a, b: bool(a) or bool(b), "or")

    def __invert__(self):
        return UnaryExpr(self, lambda v: not v, "not")

    def __bool__(self) -> bool:
        # `expr in exprs` / `if expr == other:` would otherwise coerce the
        # BinaryExpr built by __eq__ to True against any non-empty list.
        raise WorkloadError(
            f"cannot convert {self!r} to bool; comparisons build "
            f"expressions — use Expr.same_as() for structural equality"
        )

    def __hash__(self) -> int:
        return id(self)

    def alias(self, name: str) -> "Expr":
        return AliasExpr(self, name)


class Col(Expr):
    """A reference to a column by name."""

    def __init__(self, name: str) -> None:
        self.name = name

    def bind(self, schema: Sequence[str]) -> Callable[[Tuple], Any]:
        try:
            index = list(schema).index(self.name)
        except ValueError:
            raise KeyError(
                f"column {self.name!r} not in schema {list(schema)}"
            ) from None
        return lambda row: row[index]

    def references(self) -> set:
        return {self.name}

    def same_as(self, other: Any) -> bool:
        return isinstance(other, Col) and self.name == other.name

    def substitute(self, mapping: Dict[str, Expr]) -> Expr:
        return mapping.get(self.name, self)

    @property
    def label(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Lit(Expr):
    """A literal constant."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def bind(self, schema: Sequence[str]) -> Callable[[Tuple], Any]:
        value = self.value
        return lambda _row: value

    def same_as(self, other: Any) -> bool:
        return (
            isinstance(other, Lit)
            and type(self.value) is type(other.value)
            and bool(self.value == other.value)
        )

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


class BinaryExpr(Expr):
    def __init__(self, left: Expr, right: Expr, op: Callable, symbol: str) -> None:
        self.left = left
        self.right = right
        self.op = op
        self.symbol = symbol

    def bind(self, schema: Sequence[str]) -> Callable[[Tuple], Any]:
        lf, rf, op = self.left.bind(schema), self.right.bind(schema), self.op
        return lambda row: op(lf(row), rf(row))

    def references(self) -> set:
        return self.left.references() | self.right.references()

    def same_as(self, other: Any) -> bool:
        return (
            isinstance(other, BinaryExpr)
            and self.symbol == other.symbol
            and self.left.same_as(other.left)
            and self.right.same_as(other.right)
        )

    def substitute(self, mapping: Dict[str, Expr]) -> Expr:
        left = self.left.substitute(mapping)
        right = self.right.substitute(mapping)
        if left is self.left and right is self.right:
            return self
        return BinaryExpr(left, right, self.op, self.symbol)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class UnaryExpr(Expr):
    def __init__(self, inner: Expr, op: Callable, symbol: str) -> None:
        self.inner = inner
        self.op = op
        self.symbol = symbol

    def bind(self, schema: Sequence[str]) -> Callable[[Tuple], Any]:
        f, op = self.inner.bind(schema), self.op
        return lambda row: op(f(row))

    def references(self) -> set:
        return self.inner.references()

    def same_as(self, other: Any) -> bool:
        return (
            isinstance(other, UnaryExpr)
            and self.symbol == other.symbol
            and self.inner.same_as(other.inner)
        )

    def substitute(self, mapping: Dict[str, Expr]) -> Expr:
        inner = self.inner.substitute(mapping)
        if inner is self.inner:
            return self
        return UnaryExpr(inner, self.op, self.symbol)

    def __repr__(self) -> str:
        return f"{self.symbol}({self.inner!r})"


class AliasExpr(Expr):
    def __init__(self, inner: Expr, name: str) -> None:
        self.inner = inner
        self.name = name

    def bind(self, schema: Sequence[str]) -> Callable[[Tuple], Any]:
        return self.inner.bind(schema)

    def references(self) -> set:
        return self.inner.references()

    def same_as(self, other: Any) -> bool:
        return (
            isinstance(other, AliasExpr)
            and self.name == other.name
            and self.inner.same_as(other.inner)
        )

    def substitute(self, mapping: Dict[str, Expr]) -> Expr:
        inner = self.inner.substitute(mapping)
        if inner is self.inner:
            return self
        return AliasExpr(inner, self.name)

    @property
    def label(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"{self.inner!r}.alias({self.name!r})"


def col(name: str) -> Col:
    """Reference a column."""
    return Col(name)


def lit(value: Any) -> Lit:
    """A constant."""
    return Lit(value)


def _as_expr(value: Any) -> Expr:
    return value if isinstance(value, Expr) else Lit(value)


# ----------------------------------------------------------------------
# Aggregates
# ----------------------------------------------------------------------


class Agg:
    """An aggregate over an expression: (create, merge_value, merge, finish)."""

    def __init__(
        self,
        expr: Expr,
        create: Callable,
        merge_value: Callable,
        merge: Callable,
        finish: Callable,
        name: str,
    ) -> None:
        self.expr = expr
        self.create = create
        self.merge_value = merge_value
        self.merge = merge
        self.finish = finish
        self.name = name

    @property
    def label(self) -> str:
        return f"{self.name}({self.expr.label})"

    def references(self) -> set:
        return self.expr.references()

    def same_as(self, other: Any) -> bool:
        return (
            isinstance(other, Agg)
            and self.name == other.name
            and getattr(self, "label_override", None)
            == getattr(other, "label_override", None)
            and self.expr.same_as(other.expr)
        )

    def alias(self, name: str) -> "Agg":
        clone = Agg(
            self.expr, self.create, self.merge_value, self.merge,
            self.finish, self.name,
        )
        clone.label_override = name
        return clone


def _agg_label(agg: Agg) -> str:
    return getattr(agg, "label_override", agg.label)


def _null_skipping(op: Callable) -> Callable:
    """SQL aggregate semantics: a None input leaves the accumulator alone
    (and an all-None group finishes as None)."""

    def merge(acc: Any, value: Any) -> Any:
        if acc is None:
            return value
        if value is None:
            return acc
        return op(acc, value)

    return merge


def sum_(expr: Expr) -> Agg:
    merge = _null_skipping(operator.add)
    return Agg(expr, lambda v: v, merge, merge, lambda c: c, "sum")


def count_(expr: Expr = None) -> Agg:  # type: ignore[assignment]
    if expr is None:
        # COUNT(*): every row counts, whatever its columns hold.
        return Agg(
            Lit(1),
            lambda _v: 1,
            lambda c, _v: c + 1,
            operator.add,
            lambda c: c,
            "count",
        )
    # COUNT(col): only non-NULL values count.
    return Agg(
        expr,
        lambda v: 0 if v is None else 1,
        lambda c, v: c if v is None else c + 1,
        operator.add,
        lambda c: c,
        "count",
    )


def min_(expr: Expr) -> Agg:
    merge = _null_skipping(min)
    return Agg(expr, lambda v: v, merge, merge, lambda c: c, "min")


def max_(expr: Expr) -> Agg:
    merge = _null_skipping(max)
    return Agg(expr, lambda v: v, merge, merge, lambda c: c, "max")


def avg(expr: Expr) -> Agg:
    return Agg(
        expr,
        lambda v: (0, 0) if v is None else (v, 1),
        lambda c, v: c if v is None else (c[0] + v, c[1] + 1),
        lambda a, b: (a[0] + b[0], a[1] + b[1]),
        lambda c: c[0] / c[1] if c[1] else None,
        "avg",
    )

"""Column expressions for the relational layer.

A tiny expression tree — columns, literals, arithmetic, comparisons,
boolean logic — evaluated per row (a tuple) against a schema. This is
what lets queries be written as ``col("amount") * 0.9 > lit(100)`` and
compiled into the engine's map/filter closures.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Sequence, Tuple


class Expr:
    """Base expression; evaluate with :meth:`bind` against a schema."""

    def bind(self, schema: Sequence[str]) -> Callable[[Tuple], Any]:
        """Compile to a ``row -> value`` callable for the given schema."""
        raise NotImplementedError

    def references(self) -> set:
        """Column names this expression reads."""
        return set()

    @property
    def label(self) -> str:
        return repr(self)

    # -- operators ---------------------------------------------------------

    def _binary(self, other: Any, op: Callable, symbol: str) -> "Expr":
        return BinaryExpr(self, _as_expr(other), op, symbol)

    def __add__(self, other):
        return self._binary(other, operator.add, "+")

    def __radd__(self, other):
        return _as_expr(other)._binary(self, operator.add, "+")

    def __sub__(self, other):
        return self._binary(other, operator.sub, "-")

    def __rsub__(self, other):
        return _as_expr(other)._binary(self, operator.sub, "-")

    def __mul__(self, other):
        return self._binary(other, operator.mul, "*")

    def __rmul__(self, other):
        return _as_expr(other)._binary(self, operator.mul, "*")

    def __truediv__(self, other):
        return self._binary(other, operator.truediv, "/")

    def __mod__(self, other):
        return self._binary(other, operator.mod, "%")

    def __eq__(self, other):  # type: ignore[override]
        return self._binary(other, operator.eq, "==")

    def __ne__(self, other):  # type: ignore[override]
        return self._binary(other, operator.ne, "!=")

    def __lt__(self, other):
        return self._binary(other, operator.lt, "<")

    def __le__(self, other):
        return self._binary(other, operator.le, "<=")

    def __gt__(self, other):
        return self._binary(other, operator.gt, ">")

    def __ge__(self, other):
        return self._binary(other, operator.ge, ">=")

    def __and__(self, other):
        return self._binary(other, lambda a, b: bool(a) and bool(b), "and")

    def __or__(self, other):
        return self._binary(other, lambda a, b: bool(a) or bool(b), "or")

    def __invert__(self):
        return UnaryExpr(self, lambda v: not v, "not")

    def __hash__(self) -> int:
        return id(self)

    def alias(self, name: str) -> "Expr":
        return AliasExpr(self, name)


class Col(Expr):
    """A reference to a column by name."""

    def __init__(self, name: str) -> None:
        self.name = name

    def bind(self, schema: Sequence[str]) -> Callable[[Tuple], Any]:
        try:
            index = list(schema).index(self.name)
        except ValueError:
            raise KeyError(
                f"column {self.name!r} not in schema {list(schema)}"
            ) from None
        return lambda row: row[index]

    def references(self) -> set:
        return {self.name}

    @property
    def label(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Lit(Expr):
    """A literal constant."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def bind(self, schema: Sequence[str]) -> Callable[[Tuple], Any]:
        value = self.value
        return lambda _row: value

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


class BinaryExpr(Expr):
    def __init__(self, left: Expr, right: Expr, op: Callable, symbol: str) -> None:
        self.left = left
        self.right = right
        self.op = op
        self.symbol = symbol

    def bind(self, schema: Sequence[str]) -> Callable[[Tuple], Any]:
        lf, rf, op = self.left.bind(schema), self.right.bind(schema), self.op
        return lambda row: op(lf(row), rf(row))

    def references(self) -> set:
        return self.left.references() | self.right.references()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class UnaryExpr(Expr):
    def __init__(self, inner: Expr, op: Callable, symbol: str) -> None:
        self.inner = inner
        self.op = op
        self.symbol = symbol

    def bind(self, schema: Sequence[str]) -> Callable[[Tuple], Any]:
        f, op = self.inner.bind(schema), self.op
        return lambda row: op(f(row))

    def references(self) -> set:
        return self.inner.references()

    def __repr__(self) -> str:
        return f"{self.symbol}({self.inner!r})"


class AliasExpr(Expr):
    def __init__(self, inner: Expr, name: str) -> None:
        self.inner = inner
        self.name = name

    def bind(self, schema: Sequence[str]) -> Callable[[Tuple], Any]:
        return self.inner.bind(schema)

    def references(self) -> set:
        return self.inner.references()

    @property
    def label(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"{self.inner!r}.alias({self.name!r})"


def col(name: str) -> Col:
    """Reference a column."""
    return Col(name)


def lit(value: Any) -> Lit:
    """A constant."""
    return Lit(value)


def _as_expr(value: Any) -> Expr:
    return value if isinstance(value, Expr) else Lit(value)


# ----------------------------------------------------------------------
# Aggregates
# ----------------------------------------------------------------------


class Agg:
    """An aggregate over an expression: (create, merge_value, merge, finish)."""

    def __init__(
        self,
        expr: Expr,
        create: Callable,
        merge_value: Callable,
        merge: Callable,
        finish: Callable,
        name: str,
    ) -> None:
        self.expr = expr
        self.create = create
        self.merge_value = merge_value
        self.merge = merge
        self.finish = finish
        self.name = name

    @property
    def label(self) -> str:
        return f"{self.name}({self.expr.label})"

    def alias(self, name: str) -> "Agg":
        clone = Agg(
            self.expr, self.create, self.merge_value, self.merge,
            self.finish, self.name,
        )
        clone.label_override = name
        return clone


def _agg_label(agg: Agg) -> str:
    return getattr(agg, "label_override", agg.label)


def sum_(expr: Expr) -> Agg:
    return Agg(expr, lambda v: v, operator.add, operator.add, lambda c: c, "sum")


def count_(expr: Expr = None) -> Agg:  # type: ignore[assignment]
    return Agg(
        expr if expr is not None else Lit(1),
        lambda _v: 1,
        lambda c, _v: c + 1,
        operator.add,
        lambda c: c,
        "count",
    )


def min_(expr: Expr) -> Agg:
    return Agg(expr, lambda v: v, min, min, lambda c: c, "min")


def max_(expr: Expr) -> Agg:
    return Agg(expr, lambda v: v, max, max, lambda c: c, "max")


def avg(expr: Expr) -> Agg:
    return Agg(
        expr,
        lambda v: (v, 1),
        lambda c, v: (c[0] + v, c[1] + 1),
        lambda a, b: (a[0] + b[0], a[1] + b[1]),
        lambda c: c[0] / c[1] if c[1] else None,
        "avg",
    )

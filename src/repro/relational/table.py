"""Tables: a schema'd relational layer compiled onto the RDD engine.

The thin DataFrame-like API the paper's SQL workload presumes: rows are
plain tuples and a :class:`Table` wraps a :class:`LogicalPlan` over RDDs
of rows. Operators build plan nodes lazily; the first action optimizes
the plan (:func:`repro.relational.rules.default_rule_runner`, unless
``optimize=False`` or the engine conf disables it) and lowers it to
engine primitives —

* ``Project`` / ``Filter``            → narrow map/filter, keeping the
  parent's partitioner whenever the key-producing columns pass through
  untouched;
* ``Aggregate``                       → ``combine_by_key`` (one shuffle,
  map-side combined — CHOPPER-tunable, and elided into a narrow
  dependency when the input is already partitioned by the group key);
* ``Join``                            → key-by + RDD ``join`` (cogroup;
  co-partition-alignable the same way);
* ``Sort``                            → ``sort_by_key`` (range
  partitioner); ``Limit`` → per-partition truncation.

Because it bottoms out in ordinary RDD lineage, CHOPPER profiles, models,
and retunes relational queries exactly like hand-written drivers —
``Table.explain()`` shows the plan before and after the rewrite batches.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.common.errors import WorkloadError
from repro.engine.context import AnalyticsContext
from repro.engine.rdd import RDD, PartitionSubsetRDD, RecordOp
from repro.relational.expr import Agg, Col, Expr, col
from repro.relational.plan import (
    Aggregate,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Repartition,
    Scan,
    Sort,
    render_plan,
)
from repro.relational.rules import default_rule_runner
from repro.relational.stats import RangeLayout, ZoneMapSpec


# ----------------------------------------------------------------------
# Lowering: LogicalPlan -> RDD lineage
# ----------------------------------------------------------------------


def lower_plan(plan: LogicalPlan, memo: Optional[Dict[int, RDD]] = None) -> RDD:
    """Compile a plan to RDD lineage.

    ``memo`` shares the lowering of node objects that appear on both
    sides of a join (self-joins reuse one shuffle, like shared RDDs).
    """
    if memo is None:
        memo = {}
    cached = memo.get(id(plan))
    if cached is not None:
        return cached
    rdd = _lower_node(plan, memo)
    memo[id(plan)] = rdd
    return rdd


def _aligned(child: LogicalPlan, child_rdd: RDD, key_col: str) -> bool:
    """Is the lowered child already partitioned by ``key_col``?"""
    return (
        child.partitioning() == (key_col,)
        and child_rdd.partitioner is not None
    )


def _lower_node(plan: LogicalPlan, memo: Dict[int, RDD]) -> RDD:
    if isinstance(plan, Scan):
        if plan.partitions is not None:
            # Pruned scan: the subset is part of the lineage, so skipped
            # partitions never become tasks (and resubmissions re-derive
            # the identical subset).
            return PartitionSubsetRDD(plan.rdd, plan.partitions)
        return plan.rdd

    if isinstance(plan, Project):
        child = lower_plan(plan.child, memo)
        fns = [e.bind(plan.child.schema()) for e in plan.exprs]

        def _project_row(row, _fns=fns):
            return tuple(fn(row) for fn in _fns)

        return child.map_partitions(
            lambda _s, rows: [tuple(fn(row) for fn in fns) for row in rows],
            op_name=f"select[{','.join(plan.schema())}]",
            preserves_partitioning=plan.partitioning() is not None,
            record_op=RecordOp("map", _project_row),
        )

    if isinstance(plan, Filter):
        child = lower_plan(plan.child, memo)
        fn = plan.predicate.bind(plan.child.schema())
        return child.map_partitions(
            lambda _s, rows: [row for row in rows if fn(row)],
            op_name=f"where[{plan.predicate!r}]",
            preserves_partitioning=True,
            record_op=RecordOp("filter", fn),
        )

    if isinstance(plan, Aggregate):
        return _lower_aggregate(plan, memo)

    if isinstance(plan, Join):
        return _lower_join(plan, memo)

    if isinstance(plan, Sort):
        child = lower_plan(plan.child, memo)
        fn = plan.expr.bind(plan.child.schema())
        keyed = child.map_partitions(
            lambda _s, rows: [(fn(row), row) for row in rows],
            op_name="orderKey",
        )
        return keyed.sort_by_key(plan.num_partitions).values()

    if isinstance(plan, Limit):
        child = lower_plan(plan.child, memo)
        n = plan.n
        return child.map_partitions(
            lambda _s, rows: rows[:n],
            op_name=f"limit[{n}]",
            preserves_partitioning=True,
        )

    if isinstance(plan, Repartition):
        return lower_plan(plan.child, memo).repartition(plan.n)

    raise WorkloadError(f"cannot lower plan node {plan!r}")


def _lower_aggregate(plan: Aggregate, memo: Dict[int, RDD]) -> RDD:
    child_rdd = lower_plan(plan.child, memo)
    schema = plan.child.schema()
    key_fns = [k.bind(schema) for k in plan.keys]
    value_fns = [a.expr.bind(schema) for a in plan.aggs]
    creates = [a.create for a in plan.aggs]
    merge_values = [a.merge_value for a in plan.aggs]
    merges = [a.merge for a in plan.aggs]
    finishes = [a.finish for a in plan.aggs]

    single = len(plan.keys) == 1
    if single:
        key_fn = key_fns[0]

        def to_pairs(_s, rows):
            return [
                (key_fn(row), tuple(fn(row) for fn in value_fns))
                for row in rows
            ]

        key = plan.keys[0]
        aligned = (
            isinstance(key, Col)
            and _aligned(plan.child, child_rdd, key.name)
        )
    else:

        def to_pairs(_s, rows):
            return [
                (
                    tuple(fn(row) for fn in key_fns),
                    tuple(fn(row) for fn in value_fns),
                )
                for row in rows
            ]

        aligned = False

    pairs = child_rdd.map_partitions(
        to_pairs, op_name="groupKey", preserves_partitioning=aligned
    )
    combined = pairs.combine_by_key(
        lambda vs: tuple(c(v) for c, v in zip(creates, vs)),
        lambda acc, vs: tuple(
            m(a, v) for m, a, v in zip(merge_values, acc, vs)
        ),
        lambda a, b: tuple(m(x, y) for m, x, y in zip(merges, a, b)),
        num_partitions=plan.num_partitions,
        op_name="groupAgg",
    )
    if single:

        def finish(_s, rows):
            return [
                (k,) + tuple(f(a) for f, a in zip(finishes, acc))
                for k, acc in rows
            ]

    else:

        def finish(_s, rows):
            return [
                k + tuple(f(a) for f, a in zip(finishes, acc))
                for k, acc in rows
            ]

    # With a scalar key the finished row still leads with it, so the
    # combine's partitioner remains valid for downstream alignment.
    return combined.map_partitions(
        finish, op_name="groupFinish", preserves_partitioning=single
    )


def _lower_join(plan: Join, memo: Dict[int, RDD]) -> RDD:
    single = len(plan.keys) == 1

    def keyed(side: LogicalPlan, tag: str) -> RDD:
        side_rdd = lower_plan(side, memo)
        schema = side.schema()
        rest = [i for i, c in enumerate(schema) if c not in plan.keys]
        if single:
            ki = list(schema).index(plan.keys[0])

            def kv(_s, rows):
                return [
                    (row[ki], tuple(row[i] for i in rest)) for row in rows
                ]

            aligned = _aligned(side, side_rdd, plan.keys[0])
        else:
            kis = [list(schema).index(k) for k in plan.keys]

            def kv(_s, rows):
                return [
                    (
                        tuple(row[i] for i in kis),
                        tuple(row[i] for i in rest),
                    )
                    for row in rows
                ]

            aligned = False
        return side_rdd.map_partitions(
            kv, op_name=f"joinKey[{tag}]", preserves_partitioning=aligned
        )

    joined = keyed(plan.left, "left").join(
        keyed(plan.right, "right"), plan.num_partitions
    )
    if single:

        def flatten(_s, rows):
            return [(k,) + l + r for k, (l, r) in rows]

    else:

        def flatten(_s, rows):
            return [k + l + r for k, (l, r) in rows]

    return joined.map_partitions(
        flatten, op_name="joinFlatten", preserves_partitioning=single
    )


# ----------------------------------------------------------------------
# Table
# ----------------------------------------------------------------------


def _attach_zone_map_spec(scan: Scan) -> None:
    """Mark a versioned source for zone-map collection at scan time.

    Only source RDDs with a dataset version can be described (the
    version is what keys the statistics and invalidates them when the
    data changes); collection is skipped entirely when neither pruning
    nor a result cache could ever consume the maps.
    """
    rdd = scan.rdd
    version = getattr(rdd, "dataset_version", None)
    if version is None or not hasattr(rdd, "zone_map_spec"):
        return
    ctx = rdd.ctx
    if not (
        ctx.conf.partition_pruning
        or getattr(ctx, "query_cache", None) is not None
    ):
        return
    rdd.zone_map_spec = ZoneMapSpec(
        table=rdd.op_name, version=version, columns=scan.schema()
    )


def _collect_scans(plan: LogicalPlan, out: List[Scan]) -> None:
    for child in plan.children:
        _collect_scans(child, out)
    if isinstance(plan, Scan):
        out.append(plan)


class Table:
    """A logical plan over RDDs of tuple rows, plus its column names."""

    def __init__(
        self,
        plan: Union[LogicalPlan, RDD],
        schema: Optional[Sequence[str]] = None,
        optimize: Optional[bool] = None,
        layout: Optional[RangeLayout] = None,
    ) -> None:
        if isinstance(plan, RDD):
            if schema is None:
                raise WorkloadError("Table(rdd, ...) needs a schema")
            plan = Scan(plan, schema, layout=layout)
            _attach_zone_map_spec(plan)
        self.plan: LogicalPlan = plan
        # None defers to EngineConf.logical_optimizer at lowering time.
        self._optimize = optimize
        self._lowered: Optional[RDD] = None

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.plan.schema()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        ctx: AnalyticsContext,
        rows: Iterable[Tuple],
        schema: Sequence[str],
        num_partitions: Optional[int] = None,
        name: str = "table",
        optimize: Optional[bool] = None,
    ) -> "Table":
        rows = [tuple(r) for r in rows]
        width = len(tuple(schema))
        for row in rows:
            if len(row) != width:
                raise WorkloadError(
                    f"row arity {len(row)} != schema arity {width}"
                )
        rdd = ctx.parallelize(rows, num_partitions, op_name=name)
        return cls(rdd, schema, optimize=optimize)

    @classmethod
    def from_rdd(
        cls,
        rdd: RDD,
        schema: Sequence[str],
        optimize: Optional[bool] = None,
        layout: Optional[RangeLayout] = None,
    ) -> "Table":
        """Wrap an RDD of rows; ``layout`` optionally declares its range
        partitioning so filters can prune partitions on a cold scan."""
        return cls(rdd, schema, optimize=optimize, layout=layout)

    def _with_plan(self, plan: LogicalPlan) -> "Table":
        return Table(plan, optimize=self._optimize)

    def _ctx(self) -> AnalyticsContext:
        node = self.plan
        while node.children:
            node = node.children[0]
        assert isinstance(node, Scan)
        return node.rdd.ctx

    # ------------------------------------------------------------------
    # Operators (plan builders)
    # ------------------------------------------------------------------

    def select(self, *columns: Union[str, Expr]) -> "Table":
        """Project columns / expressions into a new table."""
        exprs = [col(c) if isinstance(c, str) else c for c in columns]
        return self._with_plan(Project(self.plan, exprs))

    def with_column(self, name: str, expr: Expr) -> "Table":
        """Append (or replace) one computed column."""
        if name in self.schema:
            exprs = [
                expr.alias(name) if c == name else col(c)
                for c in self.schema
            ]
        else:
            exprs = [col(c) for c in self.schema] + [expr.alias(name)]
        return self._with_plan(Project(self.plan, exprs))

    def where(self, predicate: Expr) -> "Table":
        return self._with_plan(Filter(self.plan, predicate))

    def group_by(self, *keys: Union[str, Expr]) -> "GroupedTable":
        key_exprs = [col(k) if isinstance(k, str) else k for k in keys]
        if not key_exprs:
            raise WorkloadError("group_by() needs at least one key")
        return GroupedTable(self, key_exprs)

    def join(
        self,
        other: "Table",
        on: Union[str, Sequence[str]],
        num_partitions: Optional[int] = None,
    ) -> "Table":
        """Inner equi-join on shared column names.

        Output schema: join keys, then this table's remaining columns,
        then the other's (gaining ``_r`` suffixes until collision-free).
        """
        keys = [on] if isinstance(on, str) else list(on)
        return self._with_plan(
            Join(self.plan, other.plan, keys, num_partitions)
        )

    def order_by(
        self, column: Union[str, Expr], num_partitions: Optional[int] = None
    ) -> "Table":
        expr = col(column) if isinstance(column, str) else column
        return self._with_plan(Sort(self.plan, expr, num_partitions))

    def repartition(self, num_partitions: int) -> "Table":
        """Round-robin exchange (a hand-tuning knob the optimizer elides
        when a shuffle consumer follows anyway)."""
        return self._with_plan(Repartition(self.plan, num_partitions))

    # ------------------------------------------------------------------
    # Optimization / lowering
    # ------------------------------------------------------------------

    def _effective_optimize(self) -> bool:
        if self._optimize is not None:
            return self._optimize
        return bool(self._ctx().conf.logical_optimizer)

    @property
    def rdd(self) -> RDD:
        """The compiled lineage (optimizes and lowers on first access)."""
        if self._lowered is None:
            plan = self.plan
            if self._effective_optimize():
                plan, stats = default_rule_runner(self._ctx()).optimize(plan)
                self._ctx().plan_events.append(stats.to_dict())
            self._lowered = lower_plan(plan)
        return self._lowered

    def explain(self) -> str:
        """The logical plan, and what the rewrite batches make of it.

        Optimizes in dry-run mode: pruning decisions are derived and
        shown exactly as a run would make them, but no counters move
        and the result-cache backend is only peeked — explaining then
        collecting counts each lookup once, not twice.
        """
        lines = ["== Logical plan ==", render_plan(self.plan)]
        if self._effective_optimize():
            ctx = self._ctx()
            optimized, stats = default_rule_runner(
                ctx, dry_run=True
            ).optimize(self.plan)
            lines += ["", "== Optimized plan ==", render_plan(optimized)]
            if stats.rule_hits:
                hits = ", ".join(
                    f"{name}: {n}"
                    for name, n in sorted(stats.rule_hits.items())
                )
            else:
                hits = "none"
            lines += ["", f"rules applied: {hits}"]
            scans: List[Scan] = []
            _collect_scans(optimized, scans)
            pruned_any = any(s.partitions is not None for s in scans)
            # Per-scan decisions: shown whenever something pruned, or
            # whenever a result cache is attached (`repro explain
            # --cache ...` then reports exactly what `run` would skip).
            if pruned_any or getattr(ctx, "query_cache", None) is not None:
                lines += ["", "== Partition pruning =="]
                for scan in scans:
                    name = getattr(scan.rdd, "op_name", "rdd")
                    total = scan.rdd.num_partitions
                    if scan.partitions is not None:
                        via = ", ".join(scan.pruned_by) or "static"
                        lines.append(
                            f"{name}: scan {len(scan.partitions)}/{total}"
                            f" partitions (pruned via {via})"
                        )
                    else:
                        lines.append(
                            f"{name}: scan {total}/{total} partitions"
                        )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def limit(self, n: int) -> List[Tuple]:
        limited = self._with_plan(Limit(self.plan, n))
        return limited.rdd.take(n)

    def collect(self) -> List[Tuple]:
        return self.rdd.collect()

    def count(self) -> int:
        return self.rdd.count()

    def show(self, n: int = 10) -> str:
        """A small formatted preview (returned, not printed)."""
        rows = self.limit(n)
        header = " | ".join(self.schema)
        lines = [header, "-" * len(header)]
        lines.extend(" | ".join(str(v) for v in row) for row in rows)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Table(schema={list(self.schema)})"


class GroupedTable:
    """Intermediate of ``group_by``; finish with :meth:`agg`."""

    def __init__(self, table: Table, keys: List[Expr]) -> None:
        self.table = table
        self.keys = keys

    def agg(self, *aggs: Agg, num_partitions: Optional[int] = None) -> Table:
        return self.table._with_plan(
            Aggregate(self.table.plan, self.keys, aggs, num_partitions)
        )

"""Tables: a schema'd relational layer compiled onto the RDD engine.

The thin DataFrame-like API the paper's SQL workload presumes: rows are
plain tuples, a :class:`Table` pairs an RDD of rows with a column-name
schema, and every relational operator compiles to engine primitives —

* ``select`` / ``with_column`` / ``where``  → narrow map/filter;
* ``group_by(...).agg(...)``               → ``combine_by_key`` (one
  shuffle, map-side combined — CHOPPER-tunable);
* ``join``                                 → key-by + RDD ``join``
  (cogroup; co-partition-alignable);
* ``order_by``                             → ``sort_by_key`` (range
  partitioner).

Because it bottoms out in ordinary RDD lineage, CHOPPER profiles, models,
and retunes relational queries exactly like hand-written drivers.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.common.errors import WorkloadError
from repro.engine.context import AnalyticsContext
from repro.engine.rdd import RDD
from repro.relational.expr import Agg, Expr, _agg_label, col


class Table:
    """An RDD of tuple rows plus the column names describing them."""

    def __init__(self, rdd: RDD, schema: Sequence[str]) -> None:
        self.rdd = rdd
        self.schema: Tuple[str, ...] = tuple(schema)
        if len(set(self.schema)) != len(self.schema):
            raise WorkloadError(f"duplicate column names in {self.schema}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        ctx: AnalyticsContext,
        rows: Iterable[Tuple],
        schema: Sequence[str],
        num_partitions: Optional[int] = None,
        name: str = "table",
    ) -> "Table":
        rows = [tuple(r) for r in rows]
        width = len(tuple(schema))
        for row in rows:
            if len(row) != width:
                raise WorkloadError(
                    f"row arity {len(row)} != schema arity {width}"
                )
        rdd = ctx.parallelize(rows, num_partitions, op_name=name)
        return cls(rdd, schema)

    @classmethod
    def from_rdd(cls, rdd: RDD, schema: Sequence[str]) -> "Table":
        return cls(rdd, schema)

    # ------------------------------------------------------------------
    # Row-wise operators (narrow)
    # ------------------------------------------------------------------

    def select(self, *columns: Union[str, Expr]) -> "Table":
        """Project columns / expressions into a new table."""
        exprs = [col(c) if isinstance(c, str) else c for c in columns]
        if not exprs:
            raise WorkloadError("select() needs at least one column")
        schema = self.schema
        fns = [e.bind(schema) for e in exprs]
        out_schema = [e.label for e in exprs]

        projected = self.rdd.map_partitions(
            lambda _s, rows: [tuple(fn(row) for fn in fns) for row in rows],
            op_name=f"select[{','.join(out_schema)}]",
        )
        return Table(projected, out_schema)

    def with_column(self, name: str, expr: Expr) -> "Table":
        """Append (or replace) one computed column."""
        schema = self.schema
        fn = expr.bind(schema)
        if name in schema:
            index = schema.index(name)

            def rewrite(_s, rows):
                return [
                    row[:index] + (fn(row),) + row[index + 1:] for row in rows
                ]

            return Table(
                self.rdd.map_partitions(rewrite, op_name=f"withColumn[{name}]"),
                schema,
            )
        appended = self.rdd.map_partitions(
            lambda _s, rows: [row + (fn(row),) for row in rows],
            op_name=f"withColumn[{name}]",
        )
        return Table(appended, list(schema) + [name])

    def where(self, predicate: Expr) -> "Table":
        fn = predicate.bind(self.schema)
        filtered = self.rdd.map_partitions(
            lambda _s, rows: [row for row in rows if fn(row)],
            op_name=f"where[{predicate!r}]",
            preserves_partitioning=True,
        )
        return Table(filtered, self.schema)

    # ------------------------------------------------------------------
    # Aggregation (one shuffle)
    # ------------------------------------------------------------------

    def group_by(self, *keys: Union[str, Expr]) -> "GroupedTable":
        key_exprs = [col(k) if isinstance(k, str) else k for k in keys]
        if not key_exprs:
            raise WorkloadError("group_by() needs at least one key")
        return GroupedTable(self, key_exprs)

    # ------------------------------------------------------------------
    # Join (cogroup)
    # ------------------------------------------------------------------

    def join(
        self,
        other: "Table",
        on: Union[str, Sequence[str]],
        num_partitions: Optional[int] = None,
    ) -> "Table":
        """Inner equi-join on shared column names.

        Output schema: join keys, then this table's remaining columns,
        then the other's (suffixed ``_r`` on collisions).
        """
        keys = [on] if isinstance(on, str) else list(on)
        for key in keys:
            if key not in self.schema or key not in other.schema:
                raise WorkloadError(f"join key {key!r} missing from a side")

        def keyed(table: "Table", side: str) -> RDD:
            key_fns = [col(k).bind(table.schema) for k in keys]
            rest = [i for i, c in enumerate(table.schema) if c not in keys]
            return table.rdd.map_partitions(
                lambda _s, rows: [
                    (
                        tuple(fn(row) for fn in key_fns),
                        tuple(row[i] for i in rest),
                    )
                    for row in rows
                ],
                op_name=f"joinKey[{side}]",
            )

        left_rest = [c for c in self.schema if c not in keys]
        right_rest = [c for c in other.schema if c not in keys]
        out_schema = keys + left_rest + [
            c + "_r" if c in self.schema else c for c in right_rest
        ]
        joined = keyed(self, "left").join(keyed(other, "right"), num_partitions)
        flat = joined.map_partitions(
            lambda _s, rows: [k + l + r for k, (l, r) in rows],
            op_name="joinFlatten",
        )
        return Table(flat, out_schema)

    # ------------------------------------------------------------------
    # Ordering / actions
    # ------------------------------------------------------------------

    def order_by(
        self, column: Union[str, Expr], num_partitions: Optional[int] = None
    ) -> "Table":
        expr = col(column) if isinstance(column, str) else column
        fn = expr.bind(self.schema)
        keyed = self.rdd.map_partitions(
            lambda _s, rows: [(fn(row), row) for row in rows],
            op_name="orderKey",
        )
        ordered = keyed.sort_by_key(num_partitions).values()
        return Table(ordered, self.schema)

    def limit(self, n: int) -> List[Tuple]:
        return self.rdd.take(n)

    def collect(self) -> List[Tuple]:
        return self.rdd.collect()

    def count(self) -> int:
        return self.rdd.count()

    def show(self, n: int = 10) -> str:
        """A small formatted preview (returned, not printed)."""
        rows = self.limit(n)
        header = " | ".join(self.schema)
        lines = [header, "-" * len(header)]
        lines.extend(" | ".join(str(v) for v in row) for row in rows)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Table(schema={list(self.schema)})"


class GroupedTable:
    """Intermediate of ``group_by``; finish with :meth:`agg`."""

    def __init__(self, table: Table, keys: List[Expr]) -> None:
        self.table = table
        self.keys = keys

    def agg(self, *aggs: Agg, num_partitions: Optional[int] = None) -> Table:
        if not aggs:
            raise WorkloadError("agg() needs at least one aggregate")
        schema = self.table.schema
        key_fns = [k.bind(schema) for k in self.keys]
        value_fns = [a.expr.bind(schema) for a in aggs]
        creates = [a.create for a in aggs]
        merge_values = [a.merge_value for a in aggs]
        merges = [a.merge for a in aggs]
        finishes = [a.finish for a in aggs]

        def to_pairs(_s, rows):
            return [
                (
                    tuple(fn(row) for fn in key_fns),
                    tuple(fn(row) for fn in value_fns),
                )
                for row in rows
            ]

        pairs = self.table.rdd.map_partitions(to_pairs, op_name="groupKey")
        combined = pairs.combine_by_key(
            lambda vs: tuple(c(v) for c, v in zip(creates, vs)),
            lambda acc, vs: tuple(
                m(a, v) for m, a, v in zip(merge_values, acc, vs)
            ),
            lambda a, b: tuple(m(x, y) for m, x, y in zip(merges, a, b)),
            num_partitions=num_partitions,
            op_name="groupAgg",
        )
        finished = combined.map_partitions(
            lambda _s, rows: [
                k + tuple(f(a) for f, a in zip(finishes, acc))
                for k, acc in rows
            ],
            op_name="groupFinish",
        )
        out_schema = [k.label for k in self.keys] + [_agg_label(a) for a in aggs]
        return Table(finished, out_schema)

"""Rewrite rules for logical plans, run in batches to fixed point.

Shape follows the classic rule-runner design: each :class:`Rule` is a
pure plan→plan transform, a :class:`RuleBatch` groups rules that feed
each other and re-runs them until a pass makes no change (bounded by
``max_passes``), and the :class:`RuleRunner` executes the batches in
order, counting per-rule hits for the run ledger.

Rewrites and their equivalence guarantees:

* **PushDownPredicates** — filters move below projects (substituting the
  project's expressions into the predicate), below sorts, into the
  grouping side of aggregates when they touch only bare-column keys, and
  into join sides via ``Expr.references()`` (both sides for key-only
  predicates). All of these preserve row values *and* row order.
* **PruneColumns** — narrows projections to the columns actually
  consumed above and inserts keep-projects on join inputs so unused
  columns never cross the shuffle. Row order preserved.
* **FoldProjections** — merges ``Project(Project(x))`` by substitution
  and drops identity projects. Row order preserved.
* **DropRepartition / CollapseSorts** — a ``Repartition`` feeding a
  shuffle consumer (aggregate, join side, sort, another repartition) is
  pure cost and is elided; back-to-back sorts on the same expression
  collapse to the inner one. These preserve the collected multiset; row
  order *at partition granularity* may change, so workloads that demand
  byte-stable output should end in a sort (the shipped ones do).
* **PushDownLimit** — ``Limit`` moves below projects and merges with
  adjacent limits, so ``take``/``limit`` stops materializing full
  partitions above the truncation point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.relational.expr import AliasExpr, Col, Expr
from repro.relational.plan import (
    Aggregate,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Repartition,
    Scan,
    Sort,
    count_nodes,
    render_plan,
    transform_up,
)
from repro.relational.stats import can_match


class Rule:
    """One rewrite; subclass and implement :meth:`apply` (node-local)
    or override :meth:`rewrite` (whole-plan, e.g. column pruning)."""

    name = "Rule"

    def apply(self, node: LogicalPlan) -> Optional[LogicalPlan]:
        return None

    def rewrite(self, plan: LogicalPlan) -> Tuple[LogicalPlan, int]:
        hits = 0

        def fn(node: LogicalPlan) -> Optional[LogicalPlan]:
            nonlocal hits
            out = self.apply(node)
            if out is not None:
                hits += 1
            return out

        return transform_up(plan, fn), hits


@dataclass
class RuleBatch:
    """Rules applied together, re-run until a pass changes nothing."""

    name: str
    rules: List[Rule]
    max_passes: int = 1


@dataclass
class OptimizationStats:
    """What one ``RuleRunner.optimize`` call did, for the ledger."""

    rule_hits: Dict[str, int] = field(default_factory=dict)
    batch_passes: Dict[str, int] = field(default_factory=dict)
    nodes_before: int = 0
    nodes_after: int = 0

    @property
    def total_hits(self) -> int:
        return sum(self.rule_hits.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule_hits": dict(self.rule_hits),
            "batch_passes": dict(self.batch_passes),
            "nodes_before": self.nodes_before,
            "nodes_after": self.nodes_after,
        }


class RuleRunner:
    """Run rule batches over a plan; returns (plan, stats)."""

    def __init__(self, batches: List[RuleBatch]) -> None:
        self.batches = batches

    def optimize(self, plan: LogicalPlan) -> Tuple[LogicalPlan, OptimizationStats]:
        stats = OptimizationStats(nodes_before=count_nodes(plan))
        for batch in self.batches:
            passes = 0
            for _ in range(batch.max_passes):
                passes += 1
                changed = 0
                for rule in batch.rules:
                    plan, hits = rule.rewrite(plan)
                    if hits:
                        stats.rule_hits[rule.name] = (
                            stats.rule_hits.get(rule.name, 0) + hits
                        )
                    changed += hits
                if changed == 0:
                    break
            stats.batch_passes[batch.name] = passes
        stats.nodes_after = count_nodes(plan)
        return plan, stats


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------


def _strip_alias(expr: Expr) -> Expr:
    return expr.inner if isinstance(expr, AliasExpr) else expr


def _project_mapping(project: Project) -> Dict[str, Expr]:
    """Output label -> the expression that computes it."""
    return {
        label: _strip_alias(expr)
        for label, expr in zip(project.schema(), project.exprs)
    }


class PushDownPredicates(Rule):
    name = "PushDownPredicates"

    def apply(self, node: LogicalPlan) -> Optional[LogicalPlan]:
        if not isinstance(node, Filter):
            return None
        child = node.child
        pred = node.predicate
        if isinstance(child, Project):
            pushed = pred.substitute(_project_mapping(child))
            return Project(Filter(child.child, pushed), child.exprs)
        if isinstance(child, Sort):
            # Equal sort keys share a range partition and the sort is
            # stable, so filtering first leaves survivor order intact.
            return Sort(Filter(child.child, pred), child.expr,
                        child.num_partitions)
        if isinstance(child, Aggregate):
            key_cols = {
                k.name for k in child.keys if isinstance(k, Col)
            }
            if pred.references() <= key_cols:
                return Aggregate(
                    Filter(child.child, pred), child.keys, child.aggs,
                    child.num_partitions,
                )
            return None
        if isinstance(child, Join):
            return self._push_into_join(child, pred)
        return None

    @staticmethod
    def _push_into_join(join: Join, pred: Expr) -> Optional[LogicalPlan]:
        refs = pred.references()
        keys = set(join.keys)
        left_avail = keys | set(join.left_rest)
        right_avail = keys | set(join.right_out)
        right_sub = {
            out: Col(src) for out, src in join.right_renames.items()
        }
        if refs <= keys:
            # Key-only predicates filter both build and probe sides.
            return Join(
                Filter(join.left, pred), Filter(join.right, pred),
                join.keys, join.num_partitions,
            )
        if refs <= left_avail:
            return Join(
                Filter(join.left, pred), join.right,
                join.keys, join.num_partitions,
            )
        if refs <= right_avail:
            pushed = pred.substitute(right_sub)
            return Join(
                join.left, Filter(join.right, pushed),
                join.keys, join.num_partitions,
            )
        return None


class FoldProjections(Rule):
    name = "FoldProjections"

    def apply(self, node: LogicalPlan) -> Optional[LogicalPlan]:
        if not isinstance(node, Project):
            return None
        if isinstance(node.child, Project):
            mapping = _project_mapping(node.child)
            merged = []
            for expr in node.exprs:
                folded = expr.substitute(mapping)
                if folded.label != expr.label:
                    folded = folded.alias(expr.label)
                merged.append(folded)
            return Project(node.child.child, merged)
        child_schema = node.child.schema()
        if len(node.exprs) == len(child_schema) and all(
            isinstance(e, Col) and e.name == c
            for e, c in zip(node.exprs, child_schema)
        ):
            return node.child
        return None


class DropRepartition(Rule):
    name = "DropRepartition"

    def apply(self, node: LogicalPlan) -> Optional[LogicalPlan]:
        if isinstance(node, Repartition) and isinstance(node.child, Repartition):
            return Repartition(node.child.child, node.n)
        if isinstance(node, (Aggregate, Sort)) and isinstance(
            node.children[0], Repartition
        ):
            # The consumer shuffles anyway; the round-robin exchange in
            # between is pure cost.
            return node.with_children((node.children[0].child,))
        if isinstance(node, Join):
            left, right = node.left, node.right
            if isinstance(left, Repartition):
                left = left.child
            if isinstance(right, Repartition):
                right = right.child
            if left is not node.left or right is not node.right:
                return Join(left, right, node.keys, node.num_partitions)
        return None


class CollapseSorts(Rule):
    name = "CollapseSorts"

    def apply(self, node: LogicalPlan) -> Optional[LogicalPlan]:
        if (
            isinstance(node, Sort)
            and isinstance(node.child, Sort)
            and node.expr.same_as(node.child.expr)
            and node.num_partitions in (None, node.child.num_partitions)
        ):
            # Keep the inner sort: a stable re-sort of sorted input is
            # the identity, so dropping the outer one is bit-exact.
            return node.child
        return None


class PushDownLimit(Rule):
    name = "PushDownLimit"

    def apply(self, node: LogicalPlan) -> Optional[LogicalPlan]:
        if not isinstance(node, Limit):
            return None
        child = node.child
        if isinstance(child, Limit):
            return Limit(child.child, min(node.n, child.n))
        if isinstance(child, Project):
            return Project(Limit(child.child, node.n), child.exprs)
        return None


class PruneColumns(Rule):
    """Top-down required-column pass.

    Narrows every ``Project`` to the columns its consumers actually read
    and wraps join inputs in keep-projects so unused columns never enter
    the cogroup shuffle. The root's full schema is always required, so
    the query's output is untouched.
    """

    name = "PruneColumns"

    def rewrite(self, plan: LogicalPlan) -> Tuple[LogicalPlan, int]:
        self._hits = 0
        out = self._walk(plan, set(plan.schema()))
        return out, self._hits

    def _walk(self, node: LogicalPlan, required: Set[str]) -> LogicalPlan:
        if isinstance(node, Scan):
            return node
        if isinstance(node, Project):
            keep = [e for e in node.exprs if e.label in required]
            if not keep:
                keep = [node.exprs[0]]
            child_req: Set[str] = set()
            for e in keep:
                child_req |= e.references()
            child = self._walk(node.child, child_req)
            if child is node.child and len(keep) == len(node.exprs):
                return node
            if len(keep) != len(node.exprs):
                self._hits += 1
            return Project(child, keep)
        if isinstance(node, Filter):
            child = self._walk(
                node.child, required | node.predicate.references()
            )
            return node if child is node.child else Filter(child, node.predicate)
        if isinstance(node, Sort):
            child = self._walk(node.child, required | node.expr.references())
            if child is node.child:
                return node
            return Sort(child, node.expr, node.num_partitions)
        if isinstance(node, (Limit, Repartition)):
            child = self._walk(node.children[0], required)
            return node if child is node.children[0] else node.with_children((child,))
        if isinstance(node, Aggregate):
            child_req: Set[str] = set()
            for k in node.keys:
                child_req |= k.references()
            for a in node.aggs:
                child_req |= a.expr.references()
            child = self._walk(node.child, child_req)
            if child is node.child:
                return node
            return Aggregate(child, node.keys, node.aggs, node.num_partitions)
        if isinstance(node, Join):
            return self._prune_join(node, required)
        return node

    def _prune_join(self, join: Join, required: Set[str]) -> LogicalPlan:
        keys = set(join.keys)
        left_req = keys | {
            c for c in join.left_rest if c in required
        }
        right_req = keys | {
            join.right_renames.get(c, c)
            for c in join.right_out
            if c in required
        }
        left = self._narrow(self._walk(join.left, left_req), left_req)
        right = self._narrow(self._walk(join.right, right_req), right_req)
        if left is join.left and right is join.right:
            return join
        rebuilt = Join(left, right, join.keys, join.num_partitions)
        # Narrowing a side can change the right-column rename outcome
        # (e.g. dropping a left `c` un-suffixes the right's `c_r`). If
        # a consumer's name would break, keep the original join.
        if not required <= set(rebuilt.schema()):
            return join
        return rebuilt

    def _narrow(self, side: LogicalPlan, req: Set[str]) -> LogicalPlan:
        if set(side.schema()) <= req:
            return side
        self._hits += 1
        exprs = [Col(c) for c in side.schema() if c in req]
        return Project(side, exprs)


class PrunePartitions(Rule):
    """Rewrite ``Filter``-over-``Scan`` into a partition-subset scan.

    Runs last (the plan is otherwise final) and consults, in order:

    1. the scan's declared :class:`~repro.relational.stats.RangeLayout`
       (static — prunes even a cold run of a range-partitioned table;
       a hash layout declares nothing and prunes nothing, CHOPPER's
       read-path trade-off in one rule);
    2. zone maps already collected in this context (a second query over
       the same materialized table prunes from the first one's scan);
    3. the result cache, keyed by the query-variant signature — a hit
       intersects the cached partition set in, a miss registers a
       pending entry the context resolves from zone maps at close.

    All three sources are conservative supersets of the true matching
    set, so intersecting them never changes results. The rewrite bakes
    the subset into the lineage at plan time — chaos resubmission and
    AQE re-planning re-derive the identical scan.

    ``dry_run`` (what ``Table.explain`` uses) derives the identical
    rewrite but as a pure observer: no counter increments, no log
    events, and the cache is *peeked* rather than looked up — no
    hit/miss counting, no LRU touch, no pending-miss registration — so
    explaining a query never double-counts the health line or perturbs
    backend state a real run would then see.
    """

    name = "PrunePartitions"

    def __init__(self, ctx, dry_run: bool = False) -> None:
        self.ctx = ctx
        self.dry_run = dry_run

    def rewrite(self, plan: LogicalPlan) -> Tuple[LogicalPlan, int]:
        self._hits = 0
        # The signature hashes the plan as it stands *before* this rule
        # rewrites anything, so cold and warm runs derive the same key.
        self._plan_text = render_plan(plan)
        out = transform_up(plan, self._apply_filter)
        return out, self._hits

    def _apply_filter(self, node: LogicalPlan) -> Optional[LogicalPlan]:
        if not isinstance(node, Filter):
            return None
        # Walk through intervening Projects (PruneColumns inserts them),
        # translating the predicate down to scan-level columns.
        chain: List[Project] = []
        pred = node.predicate
        child = node.child
        while isinstance(child, Project):
            pred = pred.substitute(_project_mapping(child))
            chain.append(child)
            child = child.child
        if not isinstance(child, Scan) or child.partitions is not None:
            return None
        scan = child
        rdd = scan.rdd
        n = rdd.num_partitions
        table = getattr(rdd, "op_name", None)
        version = getattr(rdd, "dataset_version", None)
        ctx = self.ctx
        kept = set(range(n))
        evidence: List[str] = []
        if ctx.conf.partition_pruning:
            if scan.layout is not None:
                layout_kept = scan.layout.kept_partitions(pred, n)
                if len(layout_kept) < n:
                    evidence.append("range-layout")
                kept &= layout_kept
            if table is not None and version is not None:
                maps = ctx.zone_maps.get((table, version, n))
                if maps:
                    zone_kept = {
                        s for s in range(n)
                        if s not in maps or can_match(pred, maps[s])
                    }
                    if len(zone_kept) < n:
                        evidence.append("zone-map")
                    kept &= zone_kept
        cache = getattr(ctx, "query_cache", None)
        if cache is not None and table is not None and version is not None:
            from repro.relational.cache import query_signature

            key = query_signature(self._plan_text, table, version, n, pred)
            if self.dry_run:
                cached = cache.peek(key, version, n)
            else:
                cached = cache.lookup(key, table, version, n, pred)
            if cached is not None:
                if len(cached) < n:
                    evidence.append("cache")
                kept &= cached
            elif not self.dry_run:
                cache.note_planned(key, kept)
        if len(kept) == n:
            return None
        if not kept:
            # The evidence proves no partition can match; still scan one
            # so the lowered stage has a task (the filter then yields
            # zero rows, which is exactly the right answer).
            kept = {0}
            if len(kept) == n:
                return None
        pruned = n - len(kept)
        self._hits += 1
        if not self.dry_run:
            ctx.obs.metrics.counter("scan.partitions_pruned").inc(pruned)
            ctx.obs.log_event(
                "INFO", "optimizer", "partitions_pruned",
                table=table or "rdd", total=n, scanned=len(kept),
                pruned=pruned, via=",".join(evidence),
            )
        rebuilt: LogicalPlan = Scan(
            rdd, scan.schema(), partitions=tuple(sorted(kept)),
            pruned_by=tuple(evidence), layout=scan.layout,
        )
        for project in reversed(chain):
            rebuilt = project.with_children((rebuilt,))
        return Filter(rebuilt, node.predicate)


def default_rule_runner(ctx=None, dry_run: bool = False) -> RuleRunner:
    """The standard batches ``Table`` runs before lowering.

    With a context, a final partition-pruning batch runs unless the
    context disables pruning — ``partition_pruning=False`` turns off
    *all* partition-subset rewriting, so a result cache configured
    alongside it is neither consulted nor written (inert, not merely
    weakened). Without a context (direct callers, unit tests) the
    classic two batches apply unchanged. ``dry_run`` makes the pruning
    batch side-effect-free (``Table.explain``'s mode — see
    :class:`PrunePartitions`).
    """
    batches = [
        RuleBatch(
            "pushdowns",
            [
                PushDownPredicates(),
                FoldProjections(),
                PushDownLimit(),
                DropRepartition(),
                CollapseSorts(),
            ],
            max_passes=10,
        ),
        RuleBatch(
            "pruning",
            [PruneColumns(), FoldProjections()],
            max_passes=4,
        ),
    ]
    if ctx is not None and ctx.conf.partition_pruning:
        batches.append(
            RuleBatch(
                "partition-pruning",
                [PrunePartitions(ctx, dry_run=dry_run)],
                max_passes=1,
            )
        )
    return RuleRunner(batches)

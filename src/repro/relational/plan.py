"""Logical query plans for the relational layer.

``Table`` operators no longer lower straight to RDDs; they build a tree
of these nodes (Scan, Project, Filter, Aggregate, Join, Sort, Limit,
Repartition). The :mod:`repro.relational.rules` batches rewrite the tree
to fixed point, and ``lower_plan`` (in :mod:`repro.relational.table`)
compiles the result into the same RDD lineage CHOPPER profiles, models
and retunes.

Every node knows three structural facts the optimizer leans on:

* ``schema()`` — output column names, validated at construction (so a
  bad query still fails at the call site, not at collect time);
* ``partitioning()`` — the column tuple the *lowered* RDD will carry a
  partitioner for, or None. This is what lets the lowering mark narrow
  maps ``preserves_partitioning=True`` and lets downstream shuffles
  align instead of re-shuffling;
* ``same_as()`` — structural equality (expression ``==`` builds
  predicates, see :meth:`Expr.same_as`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import WorkloadError
from repro.relational.expr import Agg, AliasExpr, Col, Expr, _agg_label


def _check_schema(schema: Sequence[str], where: str) -> None:
    dupes = sorted({c for c in schema if list(schema).count(c) > 1})
    if dupes:
        raise WorkloadError(
            f"duplicate column names {dupes} in {where} output "
            f"{list(schema)}"
        )


def _check_references(exprs: Sequence[Expr], child_schema: Sequence[str]) -> None:
    available = set(child_schema)
    for expr in exprs:
        for name in sorted(expr.references() - available):
            raise KeyError(
                f"column {name!r} not in schema {list(child_schema)}"
            )


def _fmt_expr(expr: Expr) -> str:
    if isinstance(expr, Col):
        return expr.name
    if isinstance(expr, AliasExpr):
        return f"{expr.inner!r} AS {expr.name}"
    return repr(expr)


def _fmt_agg(agg: Agg) -> str:
    override = getattr(agg, "label_override", None)
    return f"{agg.label} AS {override}" if override else agg.label


class LogicalPlan:
    """Base plan node; immutable once constructed."""

    children: Tuple["LogicalPlan", ...] = ()

    def schema(self) -> Tuple[str, ...]:
        return self._schema

    def partitioning(self) -> Optional[Tuple[str, ...]]:
        """Columns the lowered RDD is hash/co-partitioned by, or None."""
        return None

    def with_children(
        self, children: Sequence["LogicalPlan"]
    ) -> "LogicalPlan":
        raise NotImplementedError

    def describe(self) -> str:
        """One-line summary used by ``Table.explain()``."""
        raise NotImplementedError

    def same_as(self, other: Any) -> bool:
        if type(self) is not type(other):
            return False
        if len(self.children) != len(other.children):
            return False
        if not self._params_same_as(other):
            return False
        return all(
            a.same_as(b) for a, b in zip(self.children, other.children)
        )

    def _params_same_as(self, other: "LogicalPlan") -> bool:
        return True

    def __repr__(self) -> str:
        return self.describe()


class Scan(LogicalPlan):
    """A leaf wrapping a source RDD of tuple rows.

    ``partitions`` is None for a full scan; the ``PrunePartitions`` rule
    rewrites it to the sorted tuple of partition ids that may satisfy
    the enclosing filter (``pruned_by`` names the evidence — declared
    layout, zone maps, cached set). ``layout`` optionally declares the
    source's range partitioning for static cold-run pruning.
    """

    def __init__(
        self,
        rdd,
        schema: Sequence[str],
        partitions: Optional[Tuple[int, ...]] = None,
        pruned_by: Tuple[str, ...] = (),
        layout=None,
    ) -> None:
        self.rdd = rdd
        self._schema = tuple(schema)
        self.partitions = tuple(partitions) if partitions is not None else None
        self.pruned_by = tuple(pruned_by)
        self.layout = layout
        _check_schema(self._schema, "Scan")

    def with_children(self, children: Sequence[LogicalPlan]) -> "Scan":
        return self

    def describe(self) -> str:
        name = getattr(self.rdd, "op_name", "rdd")
        base = f"Scan {name} [{', '.join(self._schema)}]"
        if self.partitions is not None:
            total = self.rdd.num_partitions
            by = f" via {', '.join(self.pruned_by)}" if self.pruned_by else ""
            return f"{base} (scan {len(self.partitions)}/{total} partitions{by})"
        return base

    def _params_same_as(self, other: "Scan") -> bool:
        return (
            self.rdd is other.rdd
            and self._schema == other._schema
            and self.partitions == other.partitions
        )


class Project(LogicalPlan):
    """Row-wise projection: one expression per output column."""

    def __init__(self, child: LogicalPlan, exprs: Sequence[Expr]) -> None:
        if not exprs:
            raise WorkloadError("select() needs at least one column")
        self.child = child
        self.exprs = tuple(exprs)
        self.children = (child,)
        self._schema = tuple(e.label for e in self.exprs)
        _check_schema(self._schema, "Project")
        _check_references(self.exprs, child.schema())

    def passthrough(self) -> Dict[str, str]:
        """Output columns that are an untouched copy of a child column
        under the same name (the ones partitioning survives through)."""
        out = {}
        for expr in self.exprs:
            inner = expr.inner if isinstance(expr, AliasExpr) else expr
            if isinstance(inner, Col) and expr.label == inner.name:
                out[expr.label] = inner.name
        return out

    def partitioning(self) -> Optional[Tuple[str, ...]]:
        child_part = self.child.partitioning()
        if child_part is None:
            return None
        passthrough = self.passthrough()
        if all(c in passthrough for c in child_part):
            return child_part
        return None

    def with_children(self, children: Sequence[LogicalPlan]) -> "Project":
        return Project(children[0], self.exprs)

    def describe(self) -> str:
        return f"Project [{', '.join(_fmt_expr(e) for e in self.exprs)}]"

    def _params_same_as(self, other: "Project") -> bool:
        return len(self.exprs) == len(other.exprs) and all(
            a.same_as(b) for a, b in zip(self.exprs, other.exprs)
        )


class Filter(LogicalPlan):
    """Row-wise predicate; schema and partitioning pass through."""

    def __init__(self, child: LogicalPlan, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate
        self.children = (child,)
        self._schema = child.schema()
        _check_references([predicate], child.schema())

    def partitioning(self) -> Optional[Tuple[str, ...]]:
        return self.child.partitioning()

    def with_children(self, children: Sequence[LogicalPlan]) -> "Filter":
        return Filter(children[0], self.predicate)

    def describe(self) -> str:
        return f"Filter {self.predicate!r}"

    def _params_same_as(self, other: "Filter") -> bool:
        return self.predicate.same_as(other.predicate)


class Aggregate(LogicalPlan):
    """``group_by(keys).agg(aggs)`` — one shuffle, map-side combined."""

    def __init__(
        self,
        child: LogicalPlan,
        keys: Sequence[Expr],
        aggs: Sequence[Agg],
        num_partitions: Optional[int] = None,
    ) -> None:
        if not keys:
            raise WorkloadError("group_by() needs at least one key")
        if not aggs:
            raise WorkloadError("agg() needs at least one aggregate")
        self.child = child
        self.keys = tuple(keys)
        self.aggs = tuple(aggs)
        self.num_partitions = num_partitions
        self.children = (child,)
        self._schema = tuple(
            [k.label for k in self.keys] + [_agg_label(a) for a in self.aggs]
        )
        _check_schema(self._schema, "Aggregate")
        _check_references(
            list(self.keys) + [a.expr for a in self.aggs], child.schema()
        )

    def partitioning(self) -> Optional[Tuple[str, ...]]:
        # The lowering only claims a partitioner for scalar (single-key)
        # grouping: with composite keys the shuffle key is a tuple, and
        # the flattened output rows no longer carry it as row[0].
        if len(self.keys) == 1:
            return (self.keys[0].label,)
        return None

    def with_children(self, children: Sequence[LogicalPlan]) -> "Aggregate":
        return Aggregate(children[0], self.keys, self.aggs, self.num_partitions)

    def describe(self) -> str:
        keys = ", ".join(_fmt_expr(k) for k in self.keys)
        aggs = ", ".join(_fmt_agg(a) for a in self.aggs)
        suffix = f" P={self.num_partitions}" if self.num_partitions else ""
        return f"Aggregate [{keys}] aggs=[{aggs}]{suffix}"

    def _params_same_as(self, other: "Aggregate") -> bool:
        return (
            self.num_partitions == other.num_partitions
            and len(self.keys) == len(other.keys)
            and len(self.aggs) == len(other.aggs)
            and all(a.same_as(b) for a, b in zip(self.keys, other.keys))
            and all(a.same_as(b) for a, b in zip(self.aggs, other.aggs))
        )


class Join(LogicalPlan):
    """Inner equi-join on shared column names (cogroup underneath).

    Output schema: join keys, then the left's remaining columns, then the
    right's — any right column that would collide with an earlier output
    name keeps gaining ``_r`` suffixes until it is unique, and the
    ``right_renames`` map records ``output name -> right column`` so
    predicate pushdown can translate filters back to the right side.
    """

    def __init__(
        self,
        left: LogicalPlan,
        right: LogicalPlan,
        keys: Sequence[str],
        num_partitions: Optional[int] = None,
    ) -> None:
        self.left = left
        self.right = right
        self.keys = list(keys)
        self.num_partitions = num_partitions
        self.children = (left, right)
        if not self.keys:
            raise WorkloadError("join() needs at least one key column")
        for key in self.keys:
            if key not in left.schema() or key not in right.schema():
                raise WorkloadError(f"join key {key!r} missing from a side")
        _check_schema(self.keys, "Join keys")

        self.left_rest = [c for c in left.schema() if c not in self.keys]
        out: List[str] = list(self.keys) + self.left_rest
        self.right_renames: Dict[str, str] = {}
        self.right_out: List[str] = []
        for c in right.schema():
            if c in self.keys:
                continue
            name = c
            while name in out:
                name += "_r"
            if name != c:
                self.right_renames[name] = c
            self.right_out.append(name)
            out.append(name)
        self._schema = tuple(out)
        _check_schema(self._schema, "Join")

    def partitioning(self) -> Optional[Tuple[str, ...]]:
        if len(self.keys) == 1:
            return (self.keys[0],)
        return None

    def with_children(self, children: Sequence[LogicalPlan]) -> "Join":
        return Join(children[0], children[1], self.keys, self.num_partitions)

    def describe(self) -> str:
        suffix = f" P={self.num_partitions}" if self.num_partitions else ""
        return f"Join on=[{', '.join(self.keys)}]{suffix}"

    def _params_same_as(self, other: "Join") -> bool:
        return (
            self.keys == other.keys
            and self.num_partitions == other.num_partitions
        )


class Sort(LogicalPlan):
    """Total order by one expression (range shuffle underneath)."""

    def __init__(
        self,
        child: LogicalPlan,
        expr: Expr,
        num_partitions: Optional[int] = None,
    ) -> None:
        self.child = child
        self.expr = expr
        self.num_partitions = num_partitions
        self.children = (child,)
        self._schema = child.schema()
        _check_references([expr], child.schema())

    def with_children(self, children: Sequence[LogicalPlan]) -> "Sort":
        return Sort(children[0], self.expr, self.num_partitions)

    def describe(self) -> str:
        suffix = f" P={self.num_partitions}" if self.num_partitions else ""
        return f"Sort [{_fmt_expr(self.expr)}]{suffix}"

    def _params_same_as(self, other: "Sort") -> bool:
        return (
            self.num_partitions == other.num_partitions
            and self.expr.same_as(other.expr)
        )


class Limit(LogicalPlan):
    """At most ``n`` rows per partition (the take() action caps globally)."""

    def __init__(self, child: LogicalPlan, n: int) -> None:
        if n < 0:
            raise WorkloadError(f"limit() needs n >= 0, got {n}")
        self.child = child
        self.n = n
        self.children = (child,)
        self._schema = child.schema()

    def partitioning(self) -> Optional[Tuple[str, ...]]:
        return self.child.partitioning()

    def with_children(self, children: Sequence[LogicalPlan]) -> "Limit":
        return Limit(children[0], self.n)

    def describe(self) -> str:
        return f"Limit {self.n}"

    def _params_same_as(self, other: "Limit") -> bool:
        return self.n == other.n


class Repartition(LogicalPlan):
    """Round-robin redistribution over ``n`` partitions."""

    def __init__(self, child: LogicalPlan, n: int) -> None:
        if n < 1:
            raise WorkloadError(f"repartition() needs n >= 1, got {n}")
        self.child = child
        self.n = n
        self.children = (child,)
        self._schema = child.schema()

    def with_children(self, children: Sequence[LogicalPlan]) -> "Repartition":
        return Repartition(children[0], self.n)

    def describe(self) -> str:
        return f"Repartition P={self.n}"

    def _params_same_as(self, other: "Repartition") -> bool:
        return self.n == other.n


# ----------------------------------------------------------------------
# Tree utilities
# ----------------------------------------------------------------------


def transform_up(
    plan: LogicalPlan, fn: Callable[[LogicalPlan], Optional[LogicalPlan]]
) -> LogicalPlan:
    """Apply ``fn`` bottom-up, once per node; None means "unchanged"."""
    new_children = tuple(transform_up(c, fn) for c in plan.children)
    if any(nc is not oc for nc, oc in zip(new_children, plan.children)):
        plan = plan.with_children(new_children)
    out = fn(plan)
    return plan if out is None else out


def count_nodes(plan: LogicalPlan) -> int:
    return 1 + sum(count_nodes(c) for c in plan.children)


def render_plan(plan: LogicalPlan, indent: int = 0) -> str:
    """The indented tree ``Table.explain()`` prints."""
    lines = ["  " * indent + plan.describe()]
    for child in plan.children:
        lines.append(render_plan(child, indent + 1))
    return "\n".join(lines)

"""A schema'd relational layer over the RDD engine.

The DataFrame-flavored API the paper's SQL workload presumes: tables of
tuple rows with column expressions, compiled down to the same RDD
lineage CHOPPER profiles and retunes. See :mod:`repro.relational.table`.

Quick taste::

    from repro.relational import Table, col, sum_

    t = Table.from_rows(ctx, rows, ["cust", "amount"])
    revenue = (
        t.where(col("amount") > 0)
         .group_by("cust")
         .agg(sum_(col("amount")).alias("revenue"))
         .order_by("revenue")
    )
"""

from repro.relational.expr import (
    Agg,
    Col,
    Expr,
    Lit,
    avg,
    col,
    count_,
    lit,
    max_,
    min_,
    sum_,
)
from repro.relational.plan import (
    Aggregate,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Repartition,
    Scan,
    Sort,
    render_plan,
)
from repro.relational.cache import (
    CacheEntry,
    ResultCacheManager,
    open_backend,
    query_signature,
    sniff_backend,
)
from repro.relational.rules import (
    RuleBatch,
    RuleRunner,
    default_rule_runner,
)
from repro.relational.stats import (
    ColumnStats,
    RangeLayout,
    ZoneMapSpec,
    can_match,
    collect_column_stats,
)
from repro.relational.table import GroupedTable, Table, lower_plan

__all__ = [
    "Table",
    "GroupedTable",
    "Expr",
    "Col",
    "Lit",
    "Agg",
    "col",
    "lit",
    "sum_",
    "count_",
    "min_",
    "max_",
    "avg",
    "LogicalPlan",
    "Scan",
    "Project",
    "Filter",
    "Aggregate",
    "Join",
    "Sort",
    "Limit",
    "Repartition",
    "render_plan",
    "RuleBatch",
    "RuleRunner",
    "default_rule_runner",
    "lower_plan",
    "CacheEntry",
    "ResultCacheManager",
    "open_backend",
    "query_signature",
    "sniff_backend",
    "ColumnStats",
    "RangeLayout",
    "ZoneMapSpec",
    "can_match",
    "collect_column_stats",
]

"""Zone-map statistics: per-partition column summaries for pruning.

A *zone map* is the classic min/max sketch data warehouses keep beside
every block: for each partition of a materialized table, the per-column
minimum, maximum, NULL count and a distinct-value estimate. The scan
operator records them as a pure observer at materialization time (see
``SourceRDD.compute``); the :class:`PrunePartitions` optimizer rule then
evaluates ``Filter`` predicates against them — a partition whose value
range cannot satisfy the predicate never schedules a task.

This is CHOPPER's range-vs-hash trade-off made visible on the read path:
a range-partitioned table keeps each partition's key interval tight, so
zone maps prune aggressively; under hash partitioning every partition
spans the full key range and nothing can be skipped.

Everything here is conservative by construction: :func:`can_match`
returns ``False`` only when *no* row of the partition can satisfy the
predicate under Python comparison semantics (the same semantics the
lowered filter function runs with), and ``True`` whenever it cannot
tell. Pruning therefore never changes query results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Set, Tuple

import numpy as np

from repro.relational.expr import BinaryExpr, Col, Expr, Lit, UnaryExpr

#: Distinct-count estimates are exact up to this many values; beyond it
#: the estimate is reported as the cap (a lower bound), keeping the
#: per-partition bookkeeping O(cap) regardless of partition size.
DISTINCT_CAP = 1024


@dataclass(frozen=True)
class ColumnStats:
    """Zone-map entry of one column in one partition.

    ``low``/``high`` are ``None`` when the column held no comparable
    non-NULL values (empty, all-NULL, all-NaN, or mixed-type) —
    consumers must treat that as "unbounded". NaN values are excluded
    from the bounds (NaN compares False against everything, so it can
    never widen them soundly) and counted in ``nan_count`` instead;
    the ``!=`` path needs that count because ``nan != v`` is True.
    ``distinct`` is a lower-bound estimate capped at
    :data:`DISTINCT_CAP`; ``None`` when values were unhashable.
    """

    count: int
    null_count: int
    low: Optional[Any] = None
    high: Optional[Any] = None
    distinct: Optional[int] = None
    nan_count: int = 0

    def to_dict(self) -> dict:
        low = self.low if isinstance(self.low, (int, float, str)) else None
        high = self.high if isinstance(self.high, (int, float, str)) else None
        return {
            "count": self.count,
            "null_count": self.null_count,
            "low": low,
            "high": high,
            "distinct": self.distinct,
            "nan_count": self.nan_count,
        }


def _is_nan(value: Any) -> bool:
    """NaN of any float flavor (Python float, numpy scalar)."""
    try:
        return bool(value != value)
    except (TypeError, ValueError):
        return False  # exotic __ne__ (arrays): not a NaN


def _column_stats(values: Sequence[Any]) -> ColumnStats:
    count = len(values)
    non_null = [v for v in values if v is not None]
    null_count = count - len(non_null)
    nan_count = sum(1 for v in non_null if _is_nan(v))
    # NaN poisons min/max (every comparison is False, so the result is
    # order-dependent garbage); bound only the comparable values. That
    # stays conservative: a NaN row can never satisfy an ordered or ==
    # predicate, and the != path consults nan_count.
    bounded = (
        [v for v in non_null if not _is_nan(v)] if nan_count else non_null
    )
    low: Optional[Any] = None
    high: Optional[Any] = None
    if bounded:
        first = bounded[0]
        if isinstance(first, (int, float)) and not isinstance(first, bool):
            # Vectorized min/max over numeric columns; mixed numeric
            # types (int + float) coerce fine, anything else falls back.
            try:
                arr = np.asarray(bounded)
                if arr.dtype.kind in "if":
                    low = arr.min().item()
                    high = arr.max().item()
            except (TypeError, ValueError):
                pass
        if low is None:
            try:
                low = min(bounded)
                high = max(bounded)
            except TypeError:
                low = high = None  # mixed incomparable types: unbounded
    distinct: Optional[int] = None
    try:
        seen: Set[Any] = set()
        for v in non_null:
            seen.add(v)
            if len(seen) >= DISTINCT_CAP:
                break
        distinct = len(seen)
    except TypeError:
        distinct = None  # unhashable values (arrays): no estimate
    return ColumnStats(
        count=count, null_count=null_count, low=low, high=high,
        distinct=distinct, nan_count=nan_count,
    )


def collect_column_stats(
    rows: Sequence[Tuple], columns: Sequence[str]
) -> Dict[str, "ColumnStats"]:
    """Zone-map stats of one partition's rows, keyed by column name.

    Rows are the tuple records a relational scan produces; short rows
    read as NULL in the missing columns (defensive — the schema layer
    validates widths long before this runs).
    """
    per_col: Dict[str, ColumnStats] = {}
    for idx, name in enumerate(columns):
        values = [row[idx] if idx < len(row) else None for row in rows]
        per_col[name] = _column_stats(values)
    return per_col


# ----------------------------------------------------------------------
# Conservative predicate evaluation against zone maps
# ----------------------------------------------------------------------

_ORDERED = {"<", "<=", ">", ">="}
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _cmp_against_stats(symbol: str, stats: ColumnStats, value: Any) -> bool:
    """Can any row satisfy ``col <symbol> value`` given the zone map?

    Python semantics, matching the lowered filter exactly: ``None != x``
    is True, ordered comparisons against None raise (so a partition with
    NULLs is never pruned under an ordered predicate — pruning it would
    turn a runtime TypeError into silence). NaN rows compare False under
    every ordered/== predicate (they can never un-prune those), but
    ``nan != x`` is True, so a partition with NaNs survives ``!=``.
    """
    if stats.count == 0:
        return False  # no rows at all: the filter of nothing is nothing
    non_null = stats.count - stats.null_count
    if symbol == "!=":
        if stats.null_count > 0 or stats.nan_count > 0:
            return True  # None != value and nan != value are True
        if non_null == 0:
            return False
        if stats.low is None or stats.high is None:
            return True
        try:
            return not (stats.low == value == stats.high)
        except TypeError:
            return True
    if stats.null_count > 0 and symbol in _ORDERED:
        return True  # a NULL row would raise at runtime; never prune it
    if non_null == 0:
        return False  # all-NULL: == and ordered predicates match nothing
    if stats.low is None and stats.high is None:
        return True  # unbounded (mixed types): cannot rule anything out
    # One-sided bounds (RangeLayout's first/last interval) read as
    # -inf / +inf on the missing side; only the present bound can refute.
    low, high = stats.low, stats.high
    try:
        if symbol == "==":
            return (low is None or low <= value) and (
                high is None or value <= high
            )
        if symbol == "<":
            return low is None or low < value
        if symbol == "<=":
            return low is None or low <= value
        if symbol == ">":
            return high is None or high > value
        if symbol == ">=":
            return high is None or high >= value
    except TypeError:
        return True  # incomparable literal: conservative keep
    return True


def can_match(expr: Expr, stats_by_col: Dict[str, ColumnStats]) -> bool:
    """Conservative: may *any* row of the partition satisfy ``expr``?

    ``False`` is a proof of emptiness under the zone map; ``True`` means
    "cannot tell" as often as "yes". Unknown expression shapes, columns
    without statistics, and comparison errors all read as ``True``.
    """
    if isinstance(expr, BinaryExpr):
        symbol = expr.symbol
        if symbol == "and":
            return can_match(expr.left, stats_by_col) and can_match(
                expr.right, stats_by_col
            )
        if symbol == "or":
            return can_match(expr.left, stats_by_col) or can_match(
                expr.right, stats_by_col
            )
        left, right = expr.left, expr.right
        if symbol in _ORDERED or symbol in ("==", "!="):
            if isinstance(left, Col) and isinstance(right, Lit):
                col_name, value = left.name, right.value
            elif isinstance(left, Lit) and isinstance(right, Col):
                col_name, value = right.name, left.value
                symbol = _FLIP.get(symbol, symbol)
            else:
                return True
            stats = stats_by_col.get(col_name)
            if stats is None:
                return True
            return _cmp_against_stats(symbol, stats, value)
        return True
    if isinstance(expr, UnaryExpr):
        return True  # not(e): refuting it needs a proof of all-match
    return True


# ----------------------------------------------------------------------
# Declared range layouts (static pruning without a prior run)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RangeLayout:
    """A declared range partitioning of a source table on one column.

    ``bounds`` follow :class:`~repro.engine.partitioner.RangePartitioner`
    semantics exactly: ascending, deduplicated; partition 0 covers
    ``(-inf, bounds[0]]``, partition i covers ``(bounds[i-1], bounds[i]]``
    and the last partition ``(bounds[-1], +inf)``. A declared layout lets
    the optimizer prune a *cold* scan — no zone maps needed — which is
    the strongest form of CHOPPER's "range partitioning wins reads".
    """

    column: str
    bounds: Tuple[Any, ...]

    @property
    def num_partitions(self) -> int:
        return len(self.bounds) + 1

    @classmethod
    def from_partitioner(cls, column: str, partitioner) -> "RangeLayout":
        """Layout matching a RangePartitioner's (deduplicated) bounds."""
        return cls(column=column, bounds=tuple(partitioner.bounds))

    def _interval_stats(self, split: int) -> ColumnStats:
        """The split's key interval as a (conservative) zone-map entry.

        The half-open ``(lo, hi]`` interval is widened to the closed
        ``[lo, hi]`` — a superset, so pruning stays sound — and the
        unbounded ends read as ``None`` (which :func:`can_match` treats
        as "cannot rule out").
        """
        lo = self.bounds[split - 1] if split > 0 else None
        hi = self.bounds[split] if split < len(self.bounds) else None
        return ColumnStats(count=1, null_count=0, low=lo, high=hi, distinct=None)

    def kept_partitions(self, expr: Expr, num_partitions: int) -> Set[int]:
        """Partition ids a predicate may match under this layout.

        A layout whose bound count disagrees with the scan's actual
        partition count prunes nothing (stale declaration — keep all).
        """
        if num_partitions != self.num_partitions:
            return set(range(num_partitions))
        return {
            split
            for split in range(num_partitions)
            if can_match(expr, {self.column: self._interval_stats(split)})
        }


@dataclass(frozen=True)
class ZoneMapSpec:
    """What a source RDD should record zone maps *as*.

    Attached by the relational layer to versioned scans; the key triple
    ``(table, version, num_partitions)`` is what the
    :class:`~repro.engine.storage.ZoneMapStore` and the result cache are
    both keyed by, so a regenerated or re-split table never reuses stale
    statistics.
    """

    table: str
    version: str
    columns: Tuple[str, ...] = field(default_factory=tuple)

"""Partition-pruning result cache: query signatures + pluggable backends.

The cache does *not* store query results — it stores something cheaper
and safer: for a given query variant, the set of partition IDs of a
versioned source table that can possibly contribute rows. A warm run
intersects the cached set into the scan before any task is scheduled;
a cold run records zone maps while scanning and derives the set at
context close.

Three backends implement the same five-method surface (``get`` / ``put``
/ ``delete`` / ``clear`` / ``entries``):

* ``memory`` — an in-process ``OrderedDict`` (LRU order is dict order);
  gone when the context closes. The default for single-run experiments.
* ``sqlite`` — a stdlib :mod:`sqlite3` file; survives across processes,
  which is what makes warm CLI runs possible.
* ``bitmap`` — a packed-bitmap file (magic ``RPC1``): partition sets are
  stored as bitsets, one bit per partition, with a JSON header. Compact
  for wide tables, trivially diffable, rewritten atomically on put.

All backends evict LRU past ``max_entries`` and (optionally) expire
entries older than ``ttl`` seconds. The clock is injectable so eviction
is testable; by default entries are stamped with a monotonically
increasing logical tick, keeping cache files deterministic for
byte-level comparison (pass ``clock=time.time`` for wall-clock TTLs).

Keys are *query-variant signatures*: a BLAKE2b hash over the
canonicalized optimized plan text, the scan's table name + dataset
version + partition count, and the predicate's deterministic repr
(literal constants included — ``x < 100`` and ``x < 200`` are different
variants). A table regenerated with different parameters changes its
dataset version, which changes the signature *and* fails the entry's
stored-version check — stale sets can never be applied.
"""

from __future__ import annotations

import json
import os
import sqlite3
from dataclasses import dataclass, replace
from hashlib import blake2b
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.common.errors import ConfigurationError
from repro.relational.expr import Expr
from repro.relational.stats import can_match

#: Valid backend names, in the order `repro cache` and error text list them.
BACKENDS = ("memory", "sqlite", "bitmap")

#: File magic of the packed-bitmap backend.
BITMAP_MAGIC = b"RPC1"


def query_signature(
    plan_text: str,
    table: str,
    version: str,
    num_partitions: int,
    predicate: Expr,
) -> str:
    """Deterministic signature of one (query variant, scan) pair.

    ``plan_text`` is the canonical rendering of the optimized plan as it
    stands *before* partition pruning rewrites it, so cold and warm runs
    of the same query derive the same key. Expression reprs are
    deterministic (``col('x')``, ``lit(100)``), so predicate constants
    are part of the variant.
    """
    h = blake2b(digest_size=16)
    for part in (plan_text, table, version, str(num_partitions), repr(predicate)):
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """One cached partition set, plus enough metadata to validate it."""

    key: str
    table: str
    version: str
    num_partitions: int
    partitions: Tuple[int, ...]
    created: float = 0.0
    last_used: float = 0.0
    hits: int = 0

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "table": self.table,
            "version": self.version,
            "num_partitions": self.num_partitions,
            "partitions": list(self.partitions),
            "created": self.created,
            "last_used": self.last_used,
            "hits": self.hits,
        }


class _TickClock:
    """Deterministic default clock: a logical tick per call."""

    def __init__(self) -> None:
        self._tick = 0.0

    def __call__(self) -> float:
        self._tick += 1.0
        return self._tick

    def peek(self) -> float:
        """The current tick without advancing (read-only lookups)."""
        return self._tick


class CacheBackend:
    """Shared LRU/TTL policy; subclasses provide the storage dict."""

    name = "abstract"

    def __init__(
        self,
        max_entries: int = 256,
        ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.max_entries = max_entries
        self.ttl = ttl
        self.clock = clock if clock is not None else _TickClock()

    # Storage primitives subclasses implement ---------------------------
    def _load(self) -> Dict[str, CacheEntry]:
        raise NotImplementedError

    def _store(self, entries: Dict[str, CacheEntry]) -> None:
        raise NotImplementedError

    # Granular persist hooks: the defaults fall back to a full _store
    # rewrite; file backends override with cheaper targeted writes so a
    # cache *lookup* doesn't cost O(entries) I/O (or clobber entries
    # another process wrote between our load and store).
    def _touch_stored(
        self, entry: CacheEntry, entries: Dict[str, CacheEntry]
    ) -> None:
        """Persist one entry's LRU touch (last_used/hits bump)."""
        self._store(entries)

    def _delete_stored(
        self, key: str, entries: Dict[str, CacheEntry]
    ) -> None:
        """Persist one entry's removal (``entries`` no longer has it)."""
        self._store(entries)

    # Shared policy ------------------------------------------------------
    def _expired(self, entry: CacheEntry, now: float) -> bool:
        return self.ttl is not None and (now - entry.created) > self.ttl

    def get(self, key: str) -> Optional[CacheEntry]:
        entries = self._load()
        entry = entries.get(key)
        if entry is None:
            return None
        now = self.clock()
        if self._expired(entry, now):
            del entries[key]
            self._delete_stored(key, entries)
            return None
        entry = replace(entry, last_used=now, hits=entry.hits + 1)
        del entries[key]  # re-insert at MRU position
        entries[key] = entry
        self._touch_stored(entry, entries)
        return entry

    def peek(self, key: str) -> Optional[CacheEntry]:
        """Read-only lookup: no hit count, no LRU touch, no expiry
        delete — the clock is not advanced, so a peek leaves every
        observable cache state (counters, files, eviction order) as it
        was. Dry runs (``repro explain``) use this."""
        entries = self._load()
        entry = entries.get(key)
        if entry is None:
            return None
        now = (
            self.clock.peek()
            if isinstance(self.clock, _TickClock)
            else self.clock()
        )
        if self._expired(entry, now):
            return None
        return entry

    def put(self, entry: CacheEntry) -> None:
        entries = self._load()
        now = self.clock()
        if entry.created == 0.0:
            entry = replace(entry, created=now, last_used=now)
        entries.pop(entry.key, None)
        entries[entry.key] = entry
        # Evict expired first, then LRU down to max_entries.
        for key in [k for k, e in entries.items() if self._expired(e, now)]:
            del entries[key]
        while len(entries) > self.max_entries:
            lru = min(entries.values(), key=lambda e: (e.last_used, e.key))
            del entries[lru.key]
        self._store(entries)

    def delete(self, key: str) -> bool:
        entries = self._load()
        if key not in entries:
            return False
        del entries[key]
        self._store(entries)
        return True

    def clear(self) -> int:
        entries = self._load()
        count = len(entries)
        self._store({})
        return count

    def entries(self) -> List[CacheEntry]:
        return sorted(self._load().values(), key=lambda e: e.key)

    def close(self) -> None:
        pass


class MemoryCacheBackend(CacheBackend):
    """In-process dict; per-context lifetime."""

    name = "memory"

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._entries: Dict[str, CacheEntry] = {}

    def _load(self) -> Dict[str, CacheEntry]:
        return self._entries

    def _store(self, entries: Dict[str, CacheEntry]) -> None:
        self._entries = entries


class SQLiteCacheBackend(CacheBackend):
    """A stdlib sqlite3 file; shared across processes and runs."""

    name = "sqlite"

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS cache_entries (
            key TEXT PRIMARY KEY,
            table_name TEXT NOT NULL,
            version TEXT NOT NULL,
            num_partitions INTEGER NOT NULL,
            partitions TEXT NOT NULL,
            created REAL NOT NULL,
            last_used REAL NOT NULL,
            hits INTEGER NOT NULL
        )
    """

    def __init__(self, path: str, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.path = path
        try:
            self._conn = sqlite3.connect(path)
            self._conn.execute(self._SCHEMA)
            self._conn.commit()
            # Resume the logical clock past any persisted timestamps so
            # re-opened caches keep a coherent LRU order.
            if isinstance(self.clock, _TickClock):
                row = self._conn.execute(
                    "SELECT COALESCE(MAX(last_used), 0) FROM cache_entries"
                ).fetchone()
                self.clock._tick = float(row[0])
        except sqlite3.Error as exc:
            raise ConfigurationError(
                f"cannot open sqlite cache at {path!r}: {exc}"
            ) from exc

    def _load(self) -> Dict[str, CacheEntry]:
        try:
            rows = self._conn.execute(
                "SELECT key, table_name, version, num_partitions, partitions,"
                " created, last_used, hits FROM cache_entries ORDER BY last_used"
            ).fetchall()
        except sqlite3.Error as exc:
            raise ConfigurationError(
                f"cannot read sqlite cache at {self.path!r}: {exc}"
            ) from exc
        return {
            row[0]: CacheEntry(
                key=row[0],
                table=row[1],
                version=row[2],
                num_partitions=row[3],
                partitions=tuple(json.loads(row[4])),
                created=row[5],
                last_used=row[6],
                hits=row[7],
            )
            for row in rows
        }

    def _store(self, entries: Dict[str, CacheEntry]) -> None:
        try:
            self._conn.execute("DELETE FROM cache_entries")
            self._conn.executemany(
                "INSERT INTO cache_entries VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        e.key, e.table, e.version, e.num_partitions,
                        json.dumps(list(e.partitions)), e.created,
                        e.last_used, e.hits,
                    )
                    for e in entries.values()
                ],
            )
            self._conn.commit()
        except sqlite3.Error as exc:
            raise ConfigurationError(
                f"cannot write sqlite cache at {self.path!r}: {exc}"
            ) from exc

    def _touch_stored(
        self, entry: CacheEntry, entries: Dict[str, CacheEntry]
    ) -> None:
        # Row-targeted: a lookup must not rewrite the whole table (and a
        # full rewrite would clobber rows concurrent processes inserted
        # between our load and store).
        try:
            self._conn.execute(
                "UPDATE cache_entries SET last_used = ?, hits = ?"
                " WHERE key = ?",
                (entry.last_used, entry.hits, entry.key),
            )
            self._conn.commit()
        except sqlite3.Error as exc:
            raise ConfigurationError(
                f"cannot write sqlite cache at {self.path!r}: {exc}"
            ) from exc

    def _delete_stored(
        self, key: str, entries: Dict[str, CacheEntry]
    ) -> None:
        try:
            self._conn.execute(
                "DELETE FROM cache_entries WHERE key = ?", (key,)
            )
            self._conn.commit()
        except sqlite3.Error as exc:
            raise ConfigurationError(
                f"cannot write sqlite cache at {self.path!r}: {exc}"
            ) from exc

    def close(self) -> None:
        self._conn.close()


def _pack_bitmap(partitions: Tuple[int, ...], num_partitions: int) -> bytes:
    packed = bytearray((num_partitions + 7) // 8)
    for p in partitions:
        packed[p // 8] |= 1 << (p % 8)
    return bytes(packed)


def _unpack_bitmap(packed: bytes, num_partitions: int) -> Tuple[int, ...]:
    return tuple(
        p for p in range(num_partitions) if packed[p // 8] & (1 << (p % 8))
    )


class BitmapCacheBackend(CacheBackend):
    """Packed-bitmap file: ``RPC1`` magic + JSON doc with hex bitsets.

    Each entry's partition set is one bit per partition; the whole file
    is rewritten on every *put* (entry counts are small by construction
    — ``max_entries`` bounds them). LRU touches from ``get`` are
    write-behind: held in an in-memory overlay and persisted at the next
    put/delete/clear or at ``close()``, so a lookup costs one read, not
    a whole-file rewrite — and concurrent reader processes can't drop
    each other's entries through a per-hit read-modify-write cycle.
    """

    name = "bitmap"

    def __init__(self, path: str, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.path = path
        # Write-behind LRU touches keyed by entry; merged over _load
        # results and flushed by the next full _store.
        self._touched: Dict[str, CacheEntry] = {}
        if os.path.exists(path):
            self._check_magic()
        else:
            try:
                self._store({})
            except OSError as exc:
                raise ConfigurationError(
                    f"cannot create bitmap cache at {path!r}: {exc}"
                ) from exc
        if isinstance(self.clock, _TickClock):
            entries = self._load()
            if entries:
                self.clock._tick = max(e.last_used for e in entries.values())

    def _check_magic(self) -> None:
        try:
            with open(self.path, "rb") as fh:
                magic = fh.read(len(BITMAP_MAGIC))
        except OSError as exc:
            raise ConfigurationError(
                f"cannot open bitmap cache at {self.path!r}: {exc}"
            ) from exc
        if magic != BITMAP_MAGIC:
            raise ConfigurationError(
                f"not a bitmap cache file (bad magic): {self.path!r}"
            )

    def _load(self) -> Dict[str, CacheEntry]:
        try:
            with open(self.path, "rb") as fh:
                raw = fh.read()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read bitmap cache at {self.path!r}: {exc}"
            ) from exc
        if raw[: len(BITMAP_MAGIC)] != BITMAP_MAGIC:
            raise ConfigurationError(
                f"not a bitmap cache file (bad magic): {self.path!r}"
            )
        try:
            doc = json.loads(raw[len(BITMAP_MAGIC):].decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ConfigurationError(
                f"corrupt bitmap cache at {self.path!r}: {exc}"
            ) from exc
        entries: Dict[str, CacheEntry] = {}
        for rec in doc.get("entries", []):
            packed = bytes.fromhex(rec["bitmap"])
            entries[rec["key"]] = CacheEntry(
                key=rec["key"],
                table=rec["table"],
                version=rec["version"],
                num_partitions=rec["num_partitions"],
                partitions=_unpack_bitmap(packed, rec["num_partitions"]),
                created=rec["created"],
                last_used=rec["last_used"],
                hits=rec["hits"],
            )
        # Overlay not-yet-persisted LRU touches (newer than the file
        # copy). Keys missing from the file were deleted elsewhere;
        # their touches are dropped with them.
        for key, touched in self._touched.items():
            if key in entries:
                entries[key] = touched
        return entries

    def _store(self, entries: Dict[str, CacheEntry]) -> None:
        doc = {
            "format": 1,
            "entries": [
                {
                    "key": e.key,
                    "table": e.table,
                    "version": e.version,
                    "num_partitions": e.num_partitions,
                    "bitmap": _pack_bitmap(e.partitions, e.num_partitions).hex(),
                    "created": e.created,
                    "last_used": e.last_used,
                    "hits": e.hits,
                }
                for e in sorted(entries.values(), key=lambda e: e.key)
            ],
        }
        payload = BITMAP_MAGIC + json.dumps(doc, sort_keys=True).encode("utf-8")
        # Per-process temp name: concurrent writers each replace their
        # own file (last one wins, atomically); a shared name would let
        # one writer's replace() steal the temp out from under another.
        tmp = f"{self.path}.{os.getpid()}.tmp"
        with open(tmp, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, self.path)
        # Callers pass entries derived from _load(), which already
        # merged the overlay — the write above persisted every touch.
        self._touched.clear()

    def _touch_stored(
        self, entry: CacheEntry, entries: Dict[str, CacheEntry]
    ) -> None:
        self._touched[entry.key] = entry  # write-behind; see class doc

    def close(self) -> None:
        if self._touched:
            self._store(self._load())


def open_backend(
    kind: str,
    path: Optional[str] = None,
    max_entries: int = 256,
    ttl: Optional[float] = None,
    clock: Optional[Callable[[], float]] = None,
) -> CacheBackend:
    """Open a cache backend by name; ConfigurationError on bad input."""
    if kind not in BACKENDS:
        raise ConfigurationError(
            f"unknown cache backend {kind!r} (choose from {', '.join(BACKENDS)})"
        )
    kwargs: Dict[str, Any] = {
        "max_entries": max_entries, "ttl": ttl, "clock": clock,
    }
    if kind == "memory":
        if path is not None:
            raise ConfigurationError(
                "cache backend 'memory' does not take a cache path"
            )
        return MemoryCacheBackend(**kwargs)
    if path is None:
        raise ConfigurationError(
            f"cache backend {kind!r} requires a cache path"
        )
    if kind == "sqlite":
        return SQLiteCacheBackend(path, **kwargs)
    return BitmapCacheBackend(path, **kwargs)


def sniff_backend(path: str) -> str:
    """Identify an on-disk cache file by magic ('sqlite' or 'bitmap')."""
    try:
        with open(path, "rb") as fh:
            head = fh.read(16)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read cache file {path!r}: {exc}"
        ) from exc
    if head.startswith(BITMAP_MAGIC):
        return "bitmap"
    if head.startswith(b"SQLite format 3"):
        return "sqlite"
    raise ConfigurationError(
        f"unrecognized cache file format: {path!r}"
    )


@dataclass
class _PendingLookup:
    """A cache miss awaiting zone maps from the run that follows it."""

    key: str
    table: str
    version: str
    num_partitions: int
    predicate: Expr
    planned: Optional[Tuple[int, ...]] = None  # plan-time static pruning


class ResultCacheManager:
    """Drives the backend on behalf of the optimizer and the context.

    ``lookup`` runs at plan time (driver-side, deterministic — counters
    incremented here never race); misses are remembered and resolved at
    ``flush`` time from the zone maps the run collected. Entries are
    written conservatively: a partition is kept unless its zone map
    proves the predicate cannot match, and scans that never executed
    (zero zone-map coverage, e.g. `repro explain`) write nothing.
    """

    def __init__(self, backend: CacheBackend, metrics=None) -> None:
        self.backend = backend
        self._metrics = metrics
        self._pending: Dict[str, _PendingLookup] = {}
        self.hits = 0
        self.misses = 0
        self._closed = False

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc()

    def lookup(
        self,
        key: str,
        table: str,
        version: str,
        num_partitions: int,
        predicate: Expr,
    ) -> Optional[Set[int]]:
        """Cached partition set, or None (and a registered miss)."""
        entry = self.backend.get(key)
        if (
            entry is not None
            and entry.version == version
            and entry.num_partitions == num_partitions
        ):
            self.hits += 1
            self._count("cache.hits")
            return set(entry.partitions)
        self.misses += 1
        self._count("cache.misses")
        if key not in self._pending:
            self._pending[key] = _PendingLookup(
                key=key, table=table, version=version,
                num_partitions=num_partitions, predicate=predicate,
            )
        return None

    def peek(
        self, key: str, version: str, num_partitions: int
    ) -> Optional[Set[int]]:
        """Read-only lookup for dry runs (``repro explain``): reports
        the cached set without counting a hit/miss, touching the
        backend's LRU state, or registering a pending miss — explaining
        a query must not perturb what a subsequent run observes."""
        entry = self.backend.peek(key)
        if (
            entry is not None
            and entry.version == version
            and entry.num_partitions == num_partitions
        ):
            return set(entry.partitions)
        return None

    def note_planned(self, key: str, kept: Set[int]) -> None:
        """Record the plan-time (static) kept set for a pending miss."""
        pending = self._pending.get(key)
        if pending is not None:
            pending.planned = tuple(sorted(kept))

    def flush(self, zone_maps) -> int:
        """Resolve pending misses against collected zone maps; returns
        the number of entries written."""
        written = 0
        for key in sorted(self._pending):
            p = self._pending[key]
            maps = zone_maps.get((p.table, p.version, p.num_partitions))
            if not maps:
                continue  # scan never executed: nothing to learn
            candidates = (
                p.planned if p.planned is not None
                else range(p.num_partitions)
            )
            kept = tuple(
                split
                for split in sorted(candidates)
                if split not in maps  # no stats: conservative keep
                or can_match(p.predicate, maps[split])
            )
            self.backend.put(
                CacheEntry(
                    key=key, table=p.table, version=p.version,
                    num_partitions=p.num_partitions, partitions=kept,
                )
            )
            written += 1
        self._pending.clear()
        return written

    def stats(self) -> dict:
        return {
            "backend": self.backend.name,
            "hits": self.hits,
            "misses": self.misses,
            "pending": len(self._pending),
            "entries": len(self.backend.entries()),
        }

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.backend.close()

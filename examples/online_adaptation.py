#!/usr/bin/env python
"""Online adaptation, history logging, and run reports.

Shows three production-oriented features around the core optimizer:

1. **History files** — production runs are logged to JSONL (the Spark
   history-server pattern) and fed back into the workload DB offline;
2. **Online adaptation** — during a run, CHOPPER keeps collecting stage
   statistics, refits its models, and rewrites the config in place, so
   later iterations of an iterative workload use fresher schemes;
3. **Reports** — the ASCII task Gantt and per-stage tables that make
   wave quantization and stragglers visible.
"""

import tempfile
from pathlib import Path

from repro.chopper import (
    ChopperRunner,
    HistoryLogger,
    OnlineChopper,
    load_history_record,
    validate_config,
)
from repro.cluster import paper_cluster
from repro.common.units import fmt_duration
from repro.engine import AnalyticsContext, EngineConf
from repro.reporting import gantt, stage_report, utilization_report
from repro.workloads import LogisticRegressionWorkload


def main() -> None:
    workload = LogisticRegressionWorkload(
        virtual_gb=10.0, physical_records=4000, iterations=4
    )
    runner = ChopperRunner(workload)

    # --- 1. a "production" run, logged to a history file -----------------
    history_dir = Path(tempfile.mkdtemp(prefix="repro-history-"))
    history_path = history_dir / "prod-run.jsonl"
    ctx = AnalyticsContext(paper_cluster(), EngineConf(default_parallelism=300))
    logger = HistoryLogger.attach(ctx, history_path)
    workload.run(ctx)
    logger.detach()
    print(f"production run logged -> {history_path}")
    print(stage_report(ctx.stage_stats, title="production run (vanilla)"))

    # --- 2. profile + fold the history back into the DB ------------------
    print("\nprofiling test runs...")
    runner.profile(p_grid=(100, 300, 600, 1000), scales=(1.0,))
    runner.db.add_run(
        load_history_record(history_path, workload.name, workload.input_bytes)
    )
    runner.train()
    config = runner.optimize()

    # Validate the config against a fresh job graph before trusting it.
    probe_ctx = AnalyticsContext(paper_cluster(), EngineConf(default_parallelism=300))
    from repro.workloads.datagen import LabeledDataGen

    probe = LabeledDataGen(
        virtual_bytes=workload.input_bytes,
        physical_records=workload.physical_records,
        dim=workload.dim,
        seed=workload.seed,
    ).rdd(probe_ctx, 300)
    print("\n" + validate_config(config, probe, probe_ctx).summary())
    print(
        "(the 'stale' entries here belong to later jobs of the iterative\n"
        " workload — the probe graph only covers the load job, the caveat\n"
        " validate_config documents)"
    )

    # --- 3. an online-adapting CHOPPER run -------------------------------
    online_ctx = AnalyticsContext(
        paper_cluster(),
        EngineConf(default_parallelism=300, copartition_scheduling=True),
    )
    online = OnlineChopper(
        runner.db, workload.name, workload.input_bytes, runner.weights,
        refit_every=4,
    )
    with online.attach(online_ctx):
        workload.run(online_ctx)
    print(f"\nonline run: {fmt_duration(online_ctx.now)}"
          f" (vanilla was {fmt_duration(ctx.now)});"
          f" models refit {online.refits}x during the run")

    print("\ntask timeline (online run):")
    print(gantt(online_ctx, width=72))
    print("\nutilization (online run):")
    print(utilization_report(online_ctx))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Cluster utilization study: custom topologies and dstat-style metrics.

Demonstrates two things downstream users commonly need:

1. defining a custom heterogeneous cluster (mixed core counts, speeds,
   NIC bandwidths) instead of the paper's testbed;
2. reading the simulator's utilization time series (CPU %, memory,
   network packets/s, disk transactions/s) — the same series behind the
   paper's Figs. 11-14 — and summarizing them per node.
"""

from repro import AnalyticsContext, EngineConf
from repro.cluster import Cluster, NodeSpec
from repro.cluster.cluster import GBPS
from repro.common.units import GB, fmt_duration
from repro.workloads import PCAWorkload


def build_cluster() -> Cluster:
    workers = [
        NodeSpec("big-0", cores=24, speed=1.2, memory=96 * GB,
                 net_bw=25 * GBPS, executor_memory=64 * GB),
        NodeSpec("big-1", cores=24, speed=1.2, memory=96 * GB,
                 net_bw=25 * GBPS, executor_memory=64 * GB),
        NodeSpec("small-0", cores=8, speed=0.9, memory=32 * GB,
                 net_bw=1 * GBPS, executor_memory=24 * GB),
        NodeSpec("small-1", cores=8, speed=0.9, memory=32 * GB,
                 net_bw=1 * GBPS, executor_memory=24 * GB),
    ]
    master = NodeSpec("head", cores=8, speed=1.0, memory=32 * GB,
                      net_bw=10 * GBPS, executor_memory=1 * GB)
    return Cluster(workers=workers, master=master)


def main() -> None:
    cluster = build_cluster()
    ctx = AnalyticsContext(cluster, EngineConf(default_parallelism=128))

    workload = PCAWorkload(virtual_gb=10.0, physical_records=6000)
    workload.run(ctx)
    print(f"PCA finished in {fmt_duration(ctx.now)} (simulated)")

    bucket = max(ctx.now / 40.0, 1.0)
    print(f"\nper-node utilization ({bucket:.0f}s buckets):")
    header = f"{'node':>8s} {'cores':>5s} {'cpu%':>6s} {'peak cpu%':>9s} " \
             f"{'net MB/s':>9s} {'disk tx/s':>9s}"
    print(header)
    for worker in cluster.workers:
        cpu = ctx.metrics.bucketize("cpu", bucket, node=worker.name)
        net = ctx.metrics.bucketize("net_bytes", bucket, node=worker.name)
        disk = ctx.metrics.bucketize("disk_transactions", bucket, node=worker.name)
        print(
            f"{worker.name:>8s} {worker.cores:5d}"
            f" {cpu.mean() / worker.cores * 100:6.1f}"
            f" {cpu.peak() / worker.cores * 100:9.1f}"
            f" {net.mean() / 1e6:9.2f}"
            f" {disk.mean():9.1f}"
        )

    cpu_all = ctx.metrics.bucketize("cpu", bucket)
    print(f"\ncluster-average busy cores per node: {cpu_all.mean():.2f}")
    print("timeline (CPU busy-cores, cluster average):")
    for t, v in zip(cpu_all.times[::4], cpu_all.values[::4]):
        bar = "#" * int(v * 2)
        print(f"  t={t:7.0f}s {bar}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""KMeans auto-tuning: the paper's flagship scenario, end to end.

Reproduces the CHOPPER workflow of §III-IV on the KMeans workload
(shrunk from 21.8 GB to a quicker 8 GB by default; pass ``--paper`` for
the full Table I size):

1. profile: test runs sweeping (partitioner, P) at two input scales;
2. train: Eq. 1-2 models per stage signature;
3. optimize: Algorithm 3 over the regrouped DAG;
4. compare: vanilla (fixed 300 partitions) vs CHOPPER, per stage.
"""

import argparse

from repro.chopper import ChopperRunner, improvement
from repro.common.units import fmt_bytes, fmt_duration
from repro.workloads import KMeansWorkload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper", action="store_true",
        help="use the paper's 21.8 GB input (slower profiling sweep)",
    )
    args = parser.parse_args()

    virtual_gb = 21.8 if args.paper else 8.0
    workload = KMeansWorkload(virtual_gb=virtual_gb, physical_records=6000)
    runner = ChopperRunner(workload)

    print(f"profiling kmeans at {virtual_gb} GB (virtual)...")
    runs = runner.profile(
        p_grid=(100, 200, 300, 500, 800, 1200), scales=(0.33, 1.0)
    )
    models = runner.train()
    print(f"  {runs} test runs -> {models} trained stage models")

    config = runner.optimize(mode="global")
    print("\ngenerated workload config (signature -> scheme):")
    print(config.to_json())

    vanilla, chopper = runner.compare()
    print("\nper-stage comparison (vanilla | chopper):")
    print(f"{'stage':>5s} {'vanilla':>10s} {'P':>5s} | {'chopper':>10s} {'P':>5s}")
    for v_obs, c_obs in zip(
        vanilla.record.observations, chopper.record.observations
    ):
        print(
            f"{v_obs.order:5d} {fmt_duration(v_obs.duration):>10s}"
            f" {v_obs.num_partitions:5d} |"
            f" {fmt_duration(c_obs.duration):>10s} {c_obs.num_partitions:5d}"
        )

    print(f"\nvanilla total:  {fmt_duration(vanilla.total_time)}")
    print(f"chopper total:  {fmt_duration(chopper.total_time)}")
    print(f"improvement:    {improvement(vanilla, chopper) * 100:.1f}%")
    print(
        "total shuffle:  "
        f"{fmt_bytes(vanilla.total_shuffle_bytes)} -> "
        f"{fmt_bytes(chopper.total_shuffle_bytes)}"
    )


if __name__ == "__main__":
    main()

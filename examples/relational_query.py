#!/usr/bin/env python
"""Relational queries on the engine, tuned by CHOPPER.

Runs the paper's SQL-style analysis through the Table API — the query is
ordinary RDD lineage underneath, so the CHOPPER pipeline (profile, train,
optimize, rerun) applies unchanged to declarative queries:

    SELECT region, sum(cnt), sum(revenue), sum(revenue)/sum(cnt)
    FROM   (SELECT cust_id, count(*) cnt, sum(amount) revenue
            FROM orders WHERE amount > 1 GROUP BY cust_id) o
    JOIN   customers USING (cust_id)
    GROUP BY region
    ORDER BY sum(revenue)

(Pre-aggregating before the join matters: the orders table's customer
keys are Zipf-hot, and joining the *raw* table would put ~40% of it in
one partition — a straggler the simulator prices just as brutally as a
real cluster would. The paper's SQL workload has the same shape.)
"""

from repro import AnalyticsContext
from repro.chopper import ChopperRunner, improvement
from repro.common.units import GB, fmt_duration
from repro.relational import Table, col, count_, sum_
from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.datagen import SQLTableGen


class RelationalWorkload(Workload):
    """The Table-API version of the paper's SQL workload."""

    name = "relational"

    def __init__(self, virtual_gb: float = 12.0, physical_records: int = 8000):
        super().__init__()
        self.input_bytes = virtual_gb * GB
        self.physical_records = physical_records

    def run(self, ctx: AnalyticsContext, scale: float = 1.0) -> WorkloadResult:
        gen = SQLTableGen(
            virtual_bytes=self.virtual_bytes(scale),
            physical_records=self.physical_records,
            seed=self.seed,
        )
        orders = Table.from_rdd(
            gen.orders_rdd(ctx, ctx.default_parallelism),
            ["order_id", "cust_id", "product_id", "amount"],
        )
        customers = Table.from_rdd(
            gen.customers_rdd(ctx, ctx.default_parallelism),
            ["cust_id", "region"],
        )
        per_customer = (
            orders.where(col("amount") > 1)
            .group_by("cust_id")
            .agg(
                count_().alias("cnt"),
                sum_(col("amount")).alias("revenue"),
            )
        )
        result = (
            per_customer.join(customers, on="cust_id")
            .group_by("region")
            .agg(
                sum_(col("cnt")).alias("orders"),
                sum_(col("revenue")).alias("revenue"),
            )
            .with_column("avg_amount", col("revenue") / col("orders"))
            .order_by("revenue")
        )
        rows = result.collect()
        return WorkloadResult(value=rows, details={"regions": len(rows)})


def main() -> None:
    workload = RelationalWorkload()
    runner = ChopperRunner(workload)

    print("profiling the relational query...")
    runner.profile(p_grid=(100, 300, 600, 1000), scales=(1.0,))
    runner.train()

    vanilla, chopper = runner.compare()
    print("\nquery result (vanilla):")
    for row in vanilla.result.value:
        region, orders, revenue, avg_amount = row
        print(f"  {region:>10s}  orders={orders:>6d}  "
              f"revenue={revenue:14.2f}  avg={avg_amount:8.2f}")

    print(f"\nvanilla: {fmt_duration(vanilla.total_time)}")
    print(f"chopper: {fmt_duration(chopper.total_time)}")
    print(f"improvement: {improvement(vanilla, chopper) * 100:.1f}%")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: the engine API and a first taste of CHOPPER.

Runs in a few seconds::

    python examples/quickstart.py

1. Builds the paper's 6-node heterogeneous cluster (simulated).
2. Runs a few RDD transformations/actions — real results, simulated time.
3. Profiles + trains + optimizes a WordCount with CHOPPER and compares it
   against the vanilla fixed-parallelism baseline.
"""

from repro import AnalyticsContext, EngineConf, paper_cluster
from repro.chopper import ChopperRunner, improvement
from repro.common.units import fmt_bytes, fmt_duration
from repro.workloads import WordCountWorkload


def engine_tour() -> None:
    print("=== engine tour " + "=" * 40)
    ctx = AnalyticsContext(paper_cluster(), EngineConf(default_parallelism=64))

    numbers = ctx.parallelize(range(10_000), num_partitions=32)
    evens = numbers.filter(lambda x: x % 2 == 0)
    print("count of evens:          ", evens.count())

    pairs = numbers.map(lambda x: (x % 10, x))
    sums = pairs.reduce_by_key(lambda a, b: a + b, num_partitions=8)
    print("sum for key 3:           ", sums.collect_as_map()[3])

    small = ctx.parallelize([(i, f"name-{i}") for i in range(10)], 4)
    joined = sums.join(small)
    print("joined records:          ", joined.count())

    print("simulated cluster time:  ", fmt_duration(ctx.now))
    for stats in ctx.job_stats[-1].stages:
        print(
            f"  stage {stats.name:28s} {fmt_duration(stats.duration):>9s}"
            f"  P={stats.num_partitions:<4d}"
            f"  shuffle={fmt_bytes(stats.shuffle_bytes)}"
        )


def chopper_taste() -> None:
    print("\n=== CHOPPER on WordCount " + "=" * 30)
    workload = WordCountWorkload(virtual_gb=8.0, physical_records=4000)
    runner = ChopperRunner(workload)

    runs = runner.profile(p_grid=(100, 300, 600, 1000), scales=(0.5, 1.0))
    models = runner.train()
    config = runner.optimize()
    print(f"profiled {runs} test runs, trained {models} models")
    for entry in config.entries.values():
        print(
            f"  stage {entry.signature}: {entry.scheme.kind} x "
            f"{entry.scheme.num_partitions} (cost {entry.cost:.3f})"
        )

    vanilla, chopper = runner.compare()
    print(f"vanilla: {fmt_duration(vanilla.total_time)}")
    print(f"chopper: {fmt_duration(chopper.total_time)}")
    print(f"improvement: {improvement(vanilla, chopper) * 100:.1f}%")
    assert vanilla.result.value == chopper.result.value, "same answer required"


if __name__ == "__main__":
    engine_tour()
    chopper_taste()

#!/usr/bin/env python
"""SQL co-partitioning: how Algorithm 3 kills the join shuffle.

The SQL workload aggregates a Zipf-skewed orders table, joins it with a
customers table, re-aggregates by region and sorts (§IV). This example
contrasts three configurations:

* vanilla — fixed default parallelism, hash everywhere;
* CHOPPER per-stage (Algorithm 2) — each stage optimized independently,
  which can *break* the join's co-partitioning;
* CHOPPER global (Algorithm 3) — join parents share one scheme, the
  join-side shuffle is aligned away, and the co-partition-aware scheduler
  places partitions next to their data.
"""

from repro.chopper import ChopperRunner, improvement
from repro.common.units import fmt_bytes, fmt_duration
from repro.workloads import SQLWorkload


def describe(label: str, outcome) -> None:
    print(f"\n--- {label}")
    print(f"total time:    {fmt_duration(outcome.total_time)}")
    print(f"total shuffle: {fmt_bytes(outcome.total_shuffle_bytes)}")
    for obs in outcome.record.observations:
        print(
            f"  stage {obs.order}: {obs.kind:11s}"
            f" {fmt_duration(obs.duration):>9s}"
            f"  P={obs.num_partitions:<5d}"
            f"  shuffle={fmt_bytes(obs.shuffle_bytes)}"
        )


def main() -> None:
    workload = SQLWorkload(virtual_gb=12.0, physical_records=8000)
    runner = ChopperRunner(workload)

    print("profiling SQL...")
    runner.profile(p_grid=(100, 200, 300, 500, 800), scales=(0.5, 1.0))
    runner.train()

    vanilla = runner.run_vanilla()
    describe("vanilla (hash, fixed 300)", vanilla)

    per_stage = runner.run_chopper(mode="per-stage")
    describe("CHOPPER Algorithm 2 (per-stage, no grouping)", per_stage)

    global_opt = runner.run_chopper(mode="global")
    describe("CHOPPER Algorithm 3 (global, co-partitioned)", global_opt)

    print("\nsummary:")
    print(f"  per-stage improvement: {improvement(vanilla, per_stage) * 100:6.1f}%")
    print(f"  global    improvement: {improvement(vanilla, global_opt) * 100:6.1f}%")
    assert dict(vanilla.result.value).keys() == dict(global_opt.result.value).keys()


if __name__ == "__main__":
    main()

"""Extension — CHOPPER under node loss (lineage recovery chaos).

Beyond per-task failures (``bench_ext_failures.py``), this bench kills a
whole worker mid-run: its shuffle map outputs and cached blocks vanish,
reduce-side fetches raise FetchFailure, and the DAG scheduler rebuilds
exactly the lost map partitions through the lineage. The node rejoins
after a recovery delay, as a fresh executor. The question: does
CHOPPER's advantage survive losing (and regaining) a third of the big
cores?
"""

import pytest
from dataclasses import replace

from repro.chopper import ChopperAdvisor
from repro.chopper.stats import StatisticsCollector
from repro.cluster import paper_cluster
from repro.engine import AnalyticsContext

from conftest import report

# Kill big node C two simulated minutes in; it rejoins five minutes
# later. Both systems face the identical chaos schedule.
KILL_TIME = 120.0
RECOVERY = 300.0


def run_with_node_loss(runner, config, chaos: bool):
    workload = runner.workload

    def one(advisor, copartition):
        kwargs = dict(copartition_scheduling=copartition)
        if chaos:
            kwargs.update(
                node_failure_times={"C": KILL_TIME},
                node_recovery_delay=RECOVERY,
            )
        conf = replace(runner.base_conf, **kwargs)
        ctx = AnalyticsContext(paper_cluster(), conf)
        if advisor is not None:
            ctx.set_advisor(advisor)
        collector = StatisticsCollector(workload.name, workload.virtual_bytes())
        with collector.attached(ctx):
            workload.run(ctx)
        return ctx.now, ctx.dag_scheduler.stage_resubmissions

    vanilla, v_resub = one(None, False)
    chopper, c_resub = one(ChopperAdvisor(config), True)
    return vanilla, chopper, v_resub + c_resub


@pytest.mark.benchmark(group="extension")
def test_ext_node_loss_resilience(benchmark, kmeans_runner):
    def run():
        config = kmeans_runner.optimize()
        return {
            label: run_with_node_loss(kmeans_runner, config, chaos)
            for label, chaos in (("none", False), ("node C lost", True))
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Extension — KMeans under node loss (kill C @2min, back @7min)"]
    lines.append(f"{'scenario':>12s} {'vanilla (min)':>14s}"
                 f" {'chopper (min)':>14s} {'improvement':>12s}")
    for label, (vanilla, chopper, _) in results.items():
        gain = (1 - chopper / vanilla) * 100
        lines.append(
            f"{label:>12s} {vanilla / 60:14.2f} {chopper / 60:14.2f}"
            f" {gain:11.1f}%"
        )
    report("ext_chaos", lines)

    quiet_v, quiet_c, _ = results["none"]
    loss_v, loss_c, _ = results["node C lost"]
    # Losing a 32-core node costs both systems time...
    assert loss_v >= quiet_v and loss_c >= quiet_c
    # ...and CHOPPER keeps a material advantage through the outage.
    assert loss_c < 0.95 * loss_v

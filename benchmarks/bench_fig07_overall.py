"""Fig. 7 + Table I — overall execution time, vanilla Spark vs CHOPPER.

Paper claims reproduced:

* Table I input sizes: KMeans 21.8 GB, PCA 27.6 GB, SQL 34.5 GB;
* CHOPPER improves total execution time for all three workloads
  (paper: PCA 23.6 %, KMeans 35.2 %, SQL 33.9 %; the reported execution
  time includes CHOPPER's repartitioning/sampling overheads);
* results are identical — the optimization changes partitioning, never
  answers.
"""

import numpy as np
import pytest

from repro.chopper import improvement
from repro.common.units import GB

from conftest import report

PAPER_IMPROVEMENT = {"pca": 23.6, "kmeans": 35.2, "sql": 33.9}
TABLE1_GB = {"kmeans": 21.8, "pca": 27.6, "sql": 34.5}


@pytest.mark.benchmark(group="fig07")
def test_fig07_overall_execution_time(benchmark, paper_comparisons):
    outcomes = benchmark.pedantic(
        lambda: paper_comparisons, rounds=1, iterations=1
    )

    lines = ["Fig. 7 — total execution time (min): vanilla vs CHOPPER"]
    lines.append(
        f"{'workload':>9s} {'vanilla':>9s} {'chopper':>9s} "
        f"{'ours %':>7s} {'paper %':>8s}"
    )
    for name, (vanilla, chopper) in outcomes.items():
        ours = improvement(vanilla, chopper) * 100
        lines.append(
            f"{name:>9s} {vanilla.total_time / 60:9.2f}"
            f" {chopper.total_time / 60:9.2f} {ours:7.1f}"
            f" {PAPER_IMPROVEMENT[name]:8.1f}"
        )
    report("fig07_overall", lines)

    for name, (vanilla, chopper) in outcomes.items():
        # Table I input sizes drive these runs.
        assert vanilla.record.input_bytes == pytest.approx(
            TABLE1_GB[name] * GB
        )
        # CHOPPER wins, with a material margin, on every workload.
        gain = improvement(vanilla, chopper)
        assert gain > 0.08, f"{name}: expected >8% improvement, got {gain:.1%}"
        # And never at the cost of correctness (floating-point sums may
        # differ in the last bits because partitioning changes the
        # reduction order).
        if isinstance(vanilla.result.value, np.ndarray):
            assert np.allclose(vanilla.result.value, chopper.result.value)
        else:
            assert dict(vanilla.result.value) == pytest.approx(
                dict(chopper.result.value)
            )

"""Shared benchmark fixtures: profiled CHOPPER runners and report output.

Profiling sweeps are expensive, so each workload's runner is built once
per session and shared by every bench that needs it. Every bench prints
its paper-style table and also appends it to ``benchmarks/out/`` so the
rows survive pytest's output capturing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.chopper import ChopperRunner
from repro.workloads import KMeansWorkload, PCAWorkload, SQLWorkload

OUT_DIR = Path(__file__).parent / "out"

# Profiling grid shared by the workload runners: spans the paper's
# motivation range (100-500) plus the high-P region CHOPPER may exploit.
P_GRID = (100, 200, 300, 500, 800, 1200)
SCALES = (0.33, 1.0)


def report(name: str, lines) -> None:
    """Print a bench's paper-style table and persist it."""
    text = "\n".join(lines)
    print(f"\n{text}")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


def _trained_runner(workload) -> ChopperRunner:
    runner = ChopperRunner(workload)
    runner.profile(p_grid=P_GRID, scales=SCALES)
    runner.train()
    return runner


@pytest.fixture(scope="session")
def kmeans_runner() -> ChopperRunner:
    """KMeans at the paper's 21.8 GB (Table I)."""
    return _trained_runner(KMeansWorkload(virtual_gb=21.8, physical_records=4000))


@pytest.fixture(scope="session")
def pca_runner() -> ChopperRunner:
    """PCA at the paper's 27.6 GB (Table I)."""
    return _trained_runner(PCAWorkload(virtual_gb=27.6, physical_records=4000))


@pytest.fixture(scope="session")
def sql_runner() -> ChopperRunner:
    """SQL at the paper's 34.5 GB (Table I)."""
    return _trained_runner(SQLWorkload(virtual_gb=34.5, physical_records=6000))


@pytest.fixture(scope="session")
def paper_comparisons(kmeans_runner, pca_runner, sql_runner):
    """(vanilla, chopper) outcomes for all three workloads (Fig. 7 etc.)."""
    out = {}
    for name, runner in (
        ("kmeans", kmeans_runner), ("pca", pca_runner), ("sql", sql_runner)
    ):
        out[name] = runner.compare()
    return out

"""Fig. 4 + the §II-B blow-up — KMeans shuffle data per stage vs partitions.

Paper claims reproduced:

* only stages 12-17 of KMeans involve shuffle;
* "any increase in the number of partitions also increases the shuffle
  data at each stage" — for a map-side-combined aggregation the shuffle
  payload grows ~linearly with the map partition count (their stage-17
  series: 434.83 KB @ 200 -> 1081.6 KB @ 500 -> 4300.8 KB @ 2000);
* at 2000 partitions the total execution time blows up as well (their
  4.53 min vs ~2 min).
"""

import pytest

from repro.chopper import ProfilingAdvisor, StatisticsCollector
from repro.cluster import paper_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.workloads import KMeansWorkload

from conftest import report

PARTITIONS = (100, 200, 300, 400, 500, 2000)
SHUFFLE_STAGES = range(12, 18)


def run_shuffle_sweep():
    # A larger physical sample than the other benches: the linear payload
    # growth (~20 combined records per map task) needs partitions to hold
    # at least k distinct cluster keys even at P=2000.
    shuffle, totals = {}, {}
    for p in PARTITIONS:
        workload = KMeansWorkload(virtual_gb=7.3, physical_records=48_000)
        ctx = AnalyticsContext(paper_cluster(), EngineConf(default_parallelism=300))
        ctx.set_advisor(ProfilingAdvisor("hash", p))
        collector = StatisticsCollector(workload.name, workload.virtual_bytes())
        with collector.attached(ctx):
            workload.run(ctx)
        obs = collector.record.observations
        shuffle[p] = [obs[i].shuffle_bytes / 1024.0 for i in SHUFFLE_STAGES]
        totals[p] = collector.record.total_time
    return shuffle, totals


@pytest.mark.benchmark(group="fig04")
def test_fig04_shuffle_data_vs_partitions(benchmark):
    shuffle, totals = benchmark.pedantic(run_shuffle_sweep, rounds=1, iterations=1)

    lines = ["Fig. 4 — KMeans shuffle data per stage (KB) vs partitions (7.3 GB)"]
    lines.append("stage | " + " | ".join(f"P={p:5d}" for p in PARTITIONS))
    for i, stage in enumerate(SHUFFLE_STAGES):
        row = " | ".join(f"{shuffle[p][i]:7.1f}" for p in PARTITIONS)
        lines.append(f"{stage:5d} | {row}")
    lines.append("")
    lines.append("total execution time (min): " + ", ".join(
        f"P={p}: {totals[p] / 60:.2f}" for p in PARTITIONS
    ))
    lines.append("paper stage-17 reference: 434.8 KB @200, 1081.6 KB @500, 4300.8 KB @2000")
    report("fig04_shuffle", lines)

    # Shuffle volume grows monotonically with P for every shuffle stage.
    for i in range(len(list(SHUFFLE_STAGES))):
        series = [shuffle[p][i] for p in PARTITIONS]
        assert series == sorted(series), f"stage {12 + i} not monotone in P"
    # Roughly linear growth: 10x the partitions -> ~10x the shuffle data
    # (paper: 9.9x from 200 to 2000 for stage 17).
    stage17 = {p: shuffle[p][-1] for p in PARTITIONS}
    ratio = stage17[2000] / stage17[200]
    assert 5.0 < ratio < 15.0, f"expected ~10x growth, got {ratio:.1f}x"
    # The 2000-partition run is much slower overall than the 200-500 band.
    assert totals[2000] > 1.2 * min(totals[p] for p in (200, 300, 400, 500))

"""Figs. 11-14 — system utilization under CHOPPER vs vanilla.

The paper plots dstat-style series averaged over the six cluster nodes:
CPU % (Fig. 11), memory % (Fig. 12), transmitted+received packets/s
(Fig. 13), and disk transactions/s (Fig. 14), and concludes that
CHOPPER's utilization "is either equivalent or in most of the cases
better than" vanilla while finishing sooner.

Reproduced here as per-workload summaries of the same four series; the
assertion is the paper's: CHOPPER's average CPU utilization is not worse
(within tolerance) while its makespan is shorter.
"""

import pytest

from conftest import report

MTU = 1500.0  # bytes per packet for the Fig. 13 metric


def summarize(outcome):
    ctx = outcome.ctx
    horizon = ctx.now
    bucket = max(horizon / 50.0, 1.0)
    cores = ctx.cluster.total_cores / len(ctx.cluster.workers)
    cpu = ctx.metrics.bucketize("cpu", bucket, end=horizon)
    mem = ctx.metrics.bucketize("mem_working", bucket, end=horizon)
    net = ctx.metrics.bucketize("net_bytes", bucket, end=horizon)
    disk = ctx.metrics.bucketize("disk_transactions", bucket, end=horizon)
    mem_cap = outcome.ctx.cluster.workers[0].executor_memory
    return {
        "cpu_pct": cpu.mean() / cores * 100.0,
        "mem_pct": mem.mean() / mem_cap * 100.0,
        "packets_s": net.mean() / MTU,
        "disk_tx_s": disk.mean(),
        "makespan_min": horizon / 60.0,
    }


@pytest.mark.benchmark(group="fig11_14")
def test_fig11_14_utilization(benchmark, paper_comparisons):
    summaries = benchmark.pedantic(
        lambda: {
            name: (summarize(v), summarize(c))
            for name, (v, c) in paper_comparisons.items()
        },
        rounds=1,
        iterations=1,
    )

    lines = ["Figs. 11-14 — node-average utilization: vanilla | CHOPPER"]
    lines.append(
        f"{'workload':>9s} {'cpu %':>15s} {'mem %':>15s}"
        f" {'packets/s':>19s} {'disk tx/s':>17s} {'makespan':>15s}"
    )
    for name, (v, c) in summaries.items():
        lines.append(
            f"{name:>9s}"
            f" {v['cpu_pct']:6.1f} | {c['cpu_pct']:6.1f}"
            f" {v['mem_pct']:6.1f} | {c['mem_pct']:6.1f}"
            f" {v['packets_s']:8.1f} | {c['packets_s']:8.1f}"
            f" {v['disk_tx_s']:7.1f} | {c['disk_tx_s']:7.1f}"
            f" {v['makespan_min']:6.1f} | {c['makespan_min']:6.1f}"
        )
    report("fig11_14_utilization", lines)

    for name, (v, c) in summaries.items():
        # CHOPPER finishes sooner...
        assert c["makespan_min"] < v["makespan_min"], name
        # ...with equivalent-or-better average CPU utilization (the same
        # work squeezed into less wall-clock time).
        assert c["cpu_pct"] > 0.85 * v["cpu_pct"], name
        # All series are non-trivial (the samplers are actually wired up).
        for key in ("cpu_pct", "packets_s", "disk_tx_s"):
            assert v[key] > 0 and c[key] > 0, (name, key)

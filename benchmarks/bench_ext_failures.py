"""Extension — CHOPPER under task failures (the paper's future work).

§VI: "We will also explore how CHOPPER behaves under failures." The
engine injects deterministic task failures (Spark-style retries); this
bench reruns the KMeans comparison at increasing failure rates and
checks that CHOPPER's advantage survives — finer-grained stages lose
less work per failed task, so the optimized schemes degrade no worse
than the vanilla default.
"""

import pytest
from dataclasses import replace

from repro.chopper import ChopperAdvisor, improvement
from repro.chopper.stats import StatisticsCollector
from repro.cluster import paper_cluster
from repro.engine import AnalyticsContext

from conftest import report

RATES = (0.0, 0.02, 0.05)


def run_with_failures(runner, config, rate: float):
    workload = runner.workload

    def one(advisor, copartition):
        conf = replace(
            runner.base_conf,
            task_failure_rate=rate,
            copartition_scheduling=copartition,
            # Spark's default of 4 attempts can abort a whole job on an
            # unlucky streak at 5% failure; give the benchmark headroom.
            max_task_attempts=8,
        )
        ctx = AnalyticsContext(paper_cluster(), conf)
        if advisor is not None:
            ctx.set_advisor(advisor)
        collector = StatisticsCollector(workload.name, workload.virtual_bytes())
        with collector.attached(ctx):
            workload.run(ctx)
        return ctx.now

    vanilla = one(None, False)
    chopper = one(ChopperAdvisor(config), True)
    return vanilla, chopper


@pytest.mark.benchmark(group="extension")
def test_ext_failure_resilience(benchmark, kmeans_runner):
    def run():
        config = kmeans_runner.optimize()
        return {
            rate: run_with_failures(kmeans_runner, config, rate)
            for rate in RATES
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Extension — KMeans under injected task failures"]
    lines.append(f"{'failure rate':>13s} {'vanilla (min)':>14s}"
                 f" {'chopper (min)':>14s} {'improvement':>12s}")
    for rate, (vanilla, chopper) in results.items():
        gain = (1 - chopper / vanilla) * 100
        lines.append(
            f"{rate:13.2f} {vanilla / 60:14.2f} {chopper / 60:14.2f}"
            f" {gain:11.1f}%"
        )
    report("ext_failures", lines)

    for rate, (vanilla, chopper) in results.items():
        # Failures cost time on both systems...
        if rate > 0:
            assert vanilla > results[0.0][0]
        # ...but CHOPPER keeps a material advantage throughout.
        assert chopper < 0.95 * vanilla, f"rate={rate}"

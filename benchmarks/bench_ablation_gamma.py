"""Ablation — the gamma threshold for repartition insertion (§III-C).

The paper fixes gamma = 1.5 "to tolerate the model estimation error".
This ablation drives a SQL variant whose per-customer aggregation is
user-fixed at a pathological 16 partitions (gigabyte join partitions,
idle cores), and sweeps gamma:

* a permissive gamma (~1.0) inserts the repartition and recovers most of
  the lost time;
* a conservative gamma (very large) refuses, leaving the user's bad
  scheme in place.
"""

import pytest

from repro.chopper import ChopperRunner
from repro.workloads import SQLWorkload

from conftest import P_GRID, report


def build_runner() -> ChopperRunner:
    workload = SQLWorkload(
        virtual_gb=34.5, physical_records=6000, fixed_agg_partitions=16
    )
    runner = ChopperRunner(workload)
    # The grid must span the user's pathological P=16 so the model can
    # price the fixed scheme it is asked to judge.
    runner.profile(p_grid=(16,) + P_GRID, scales=(1.0,))
    runner.train()
    return runner


@pytest.mark.benchmark(group="ablation")
def test_ablation_gamma_threshold(benchmark):
    def run():
        runner = build_runner()
        results = {}
        for gamma in (1.0, 1.5, 1e9):
            runner.gamma = gamma
            config = runner.optimize()
            inserted = sum(
                1 for e in config.entries.values() if e.insert_repartition
            )
            outcome = runner.run_chopper(config=config)
            results[gamma] = (inserted, outcome.total_time)
        vanilla = runner.run_vanilla()
        return results, vanilla.total_time

    results, vanilla_time = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Ablation — gamma-gated repartition insertion (SQL, fixed P=16)"]
    lines.append(f"vanilla (fixed scheme respected blindly): {vanilla_time / 60:.2f} min")
    lines.append(f"{'gamma':>8s} {'repartitions':>13s} {'time (min)':>11s}")
    for gamma, (inserted, total) in results.items():
        label = f"{gamma:g}"
        lines.append(f"{label:>8s} {inserted:13d} {total / 60:11.2f}")
    report("ablation_gamma", lines)

    # A conservative gamma never inserts.
    assert results[1e9][0] == 0
    # A permissive gamma inserts at least one repartition phase...
    assert results[1.0][0] >= 1
    # ...and the inserted phase pays for itself against the no-insert run.
    assert results[1.0][1] < results[1e9][1]

"""Fig. 10 — SQL per-stage execution time breakdown.

Paper claims reproduced: CHOPPER shortens the SQL stages overall, and the
join phase in particular benefits from detecting dependent RDDs and
co-partitioning them ("stage 4 takes comparatively shorter time to
execute using CHOPPER versus Spark ... CHOPPER combines these two
sub-stages for shuffle write").
"""

import pytest

from conftest import report


@pytest.mark.benchmark(group="fig10")
def test_fig10_sql_stage_breakdown(benchmark, paper_comparisons):
    vanilla, chopper = benchmark.pedantic(
        lambda: paper_comparisons["sql"], rounds=1, iterations=1
    )
    v_obs = vanilla.record.observations
    c_obs = chopper.record.observations

    lines = ["Fig. 10 — SQL per-stage execution time (s): vanilla vs CHOPPER"]
    lines.append(f"{'stage':>5s} {'vanilla':>9s} {'chopper':>9s}")
    for i in range(max(len(v_obs), len(c_obs))):
        v = f"{v_obs[i].duration:9.1f}" if i < len(v_obs) else "        -"
        c = f"{c_obs[i].duration:9.1f}" if i < len(c_obs) else "        -"
        lines.append(f"{i:5d} {v} {c}")
    lines.append(
        f"total {sum(o.duration for o in v_obs):9.1f}"
        f" {sum(o.duration for o in c_obs):9.1f}"
    )
    report("fig10_sql_breakdown", lines)

    # Overall stage time drops.
    assert sum(o.duration for o in c_obs) < sum(o.duration for o in v_obs)
    # The heavy join-phase stage (the slowest vanilla stage) improves.
    v_heavy = max(v_obs, key=lambda o: o.duration)
    c_same_order = [o for o in c_obs if o.order == v_heavy.order]
    if c_same_order:
        assert c_same_order[0].duration <= 1.05 * v_heavy.duration

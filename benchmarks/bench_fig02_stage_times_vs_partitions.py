"""Fig. 2 — KMeans execution time per stage under 100..500 partitions.

Paper setup (§II-B): KMeans, 7.3 GB input, 20 stages, uniform partition
counts swept from 100 to 500. Claim reproduced: "For every stage, the
number of partitions that yields minimum execution time varies" and the
per-stage times differ materially across partition counts.
"""

import pytest

from repro.chopper import ProfilingAdvisor, StatisticsCollector
from repro.cluster import paper_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.workloads import KMeansWorkload

from conftest import report

PARTITIONS = (100, 200, 300, 400, 500)


def run_sweep():
    """{P: [per-stage durations]} for the 7.3 GB motivation KMeans."""
    results = {}
    for p in PARTITIONS:
        workload = KMeansWorkload(virtual_gb=7.3, physical_records=4000)
        ctx = AnalyticsContext(paper_cluster(), EngineConf(default_parallelism=300))
        ctx.set_advisor(ProfilingAdvisor("hash", p))
        collector = StatisticsCollector(workload.name, workload.virtual_bytes())
        with collector.attached(ctx):
            workload.run(ctx)
        results[p] = [o.duration for o in collector.record.observations]
    return results


@pytest.mark.benchmark(group="fig02")
def test_fig02_stage_times_vs_partitions(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    n_stages = len(results[PARTITIONS[0]])
    lines = ["Fig. 2 — KMeans per-stage execution time (s) vs partitions"]
    lines.append("stage | " + " | ".join(f"P={p:4d}" for p in PARTITIONS))
    for stage in range(n_stages):
        row = " | ".join(f"{results[p][stage]:6.1f}" for p in PARTITIONS)
        lines.append(f"{stage:5d} | {row}")
    report("fig02_stage_times", lines)

    # Paper claim 1: 20 stages in total.
    assert n_stages == 20
    # Paper claim 2: the best partition count varies across stages.
    best_p = [
        min(PARTITIONS, key=lambda p: results[p][stage])
        for stage in range(1, n_stages)  # skip noisy stage 1 (sample)
    ]
    assert len(set(best_p)) > 1, "optimal P should differ across stages"
    # Paper claim 3: per-stage time depends materially on P (>= 25% spread
    # between best and worst for the heavy stages).
    for stage in (0, 12, 14, 16):
        times = [results[p][stage] for p in PARTITIONS]
        assert max(times) > 1.25 * min(times)

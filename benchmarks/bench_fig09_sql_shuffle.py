"""Fig. 9 — SQL shuffle data per stage, vanilla vs CHOPPER.

Paper claim: "the shuffle data for all four stages is less under CHOPPER
compared to vanilla Spark" (their stage 4 stays equal at 4.7 GB).

In this reproduction the SQL query's dominant shuffle — the join-side
customers table — is irreducible in *volume* (the bytes must move no
matter how they are partitioned), so the claim is asserted on two
measurable effects of CHOPPER's choices:

* total shuffle volume does not grow (the aggregation shuffles shrink
  with better map parallelism, the join side stays equal — the paper's
  stage-4 behaviour);
* the *remote* fraction of shuffle reads (actual network traffic) drops,
  which is precisely what the co-partition-aware scheduler is for
  ("schedules partitions that are in the same key range on the same
  machine ... to decrease the amount of shuffle data").
"""

import pytest

from repro.common.units import fmt_bytes

from conftest import report


def stage_rows(outcome):
    return [
        (s.name, s.shuffle_bytes, s.remote_shuffle_read)
        for s in outcome.ctx.stage_stats
    ]


@pytest.mark.benchmark(group="fig09")
def test_fig09_sql_shuffle_per_stage(benchmark, paper_comparisons):
    vanilla, chopper = benchmark.pedantic(
        lambda: paper_comparisons["sql"], rounds=1, iterations=1
    )
    v_rows = stage_rows(vanilla)
    c_rows = stage_rows(chopper)

    lines = ["Fig. 9 — SQL shuffle per stage: volume and remote (network) bytes"]
    lines.append(f"{'stage':>5s} {'van volume':>12s} {'van remote':>12s}"
                 f" {'chop volume':>12s} {'chop remote':>12s}")
    for i in range(max(len(v_rows), len(c_rows))):
        v = v_rows[i] if i < len(v_rows) else ("-", 0, 0)
        c = c_rows[i] if i < len(c_rows) else ("-", 0, 0)
        lines.append(
            f"{i:5d} {fmt_bytes(v[1]):>12s} {fmt_bytes(v[2]):>12s}"
            f" {fmt_bytes(c[1]):>12s} {fmt_bytes(c[2]):>12s}"
        )
    v_volume = sum(r[1] for r in v_rows)
    v_remote = sum(r[2] for r in v_rows)
    c_volume = sum(r[1] for r in c_rows)
    c_remote = sum(r[2] for r in c_rows)
    lines.append(
        f"total {fmt_bytes(v_volume):>12s} {fmt_bytes(v_remote):>12s}"
        f" {fmt_bytes(c_volume):>12s} {fmt_bytes(c_remote):>12s}"
    )
    report("fig09_sql_shuffle", lines)

    # Volume does not grow (paper: shrinks or stays equal per stage).
    assert c_volume <= 1.02 * v_volume
    # Network traffic (remote shuffle reads) drops under co-partitioning.
    assert c_remote < v_remote

"""Fig. 8 + Table II — KMeans per-stage timing breakdown.

Paper claims reproduced:

* CHOPPER reduces the execution time of (nearly) every KMeans stage
  (their Fig. 8 shows all stages 1-19 improving);
* stage 0 — shown separately in Table II because it dominates — drops
  substantially (paper: 372 s -> 250 s).
"""

import pytest

from conftest import report


@pytest.mark.benchmark(group="fig08")
def test_fig08_kmeans_stage_breakdown(benchmark, paper_comparisons):
    vanilla, chopper = benchmark.pedantic(
        lambda: paper_comparisons["kmeans"], rounds=1, iterations=1
    )
    v_obs = vanilla.record.observations
    c_obs = chopper.record.observations
    assert len(v_obs) == len(c_obs) == 20

    lines = ["Fig. 8 — KMeans per-stage time (s): vanilla vs CHOPPER"]
    lines.append(f"{'stage':>5s} {'vanilla':>9s} {'chopper':>9s} {'delta %':>8s}")
    for v, c in zip(v_obs, c_obs):
        delta = (1 - c.duration / v.duration) * 100 if v.duration > 0 else 0.0
        lines.append(
            f"{v.order:5d} {v.duration:9.1f} {c.duration:9.1f} {delta:8.1f}"
        )
    lines.append("")
    lines.append("Table II — stage 0 execution time (s)")
    lines.append(f"  CHOPPER: {c_obs[0].duration:7.1f}   (paper: 250)")
    lines.append(f"  Spark:   {v_obs[0].duration:7.1f}   (paper: 372)")
    report("fig08_kmeans_breakdown", lines)

    # Table II: stage 0 improves materially under CHOPPER.
    assert c_obs[0].duration < 0.95 * v_obs[0].duration
    # Fig. 8: the bulk of stages improve (allow a few noisy small stages).
    improved = sum(1 for v, c in zip(v_obs, c_obs) if c.duration <= v.duration)
    assert improved >= 14, f"only {improved}/20 stages improved"
    # Summed stage time improves as well.
    assert sum(c.duration for c in c_obs) < sum(v.duration for v in v_obs)

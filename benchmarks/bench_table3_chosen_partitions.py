"""Table III — the partition counts CHOPPER assigns per KMeans stage.

Paper claims reproduced:

* CHOPPER "effectively detects and changes to the correct number of
  partitions for this workload rather than using a fixed (default) value"
  — the chosen counts vary across stages instead of being 300 everywhere
  (their row: 210/210/300/720/.../210 vs Spark's constant 300);
* "Stages 12 to 17 are iterative, and thus are assigned the same number
  of partitions" — same signature, one scheme.
"""

import pytest

from conftest import report

PAPER_ROW = {
    0: 210, 1: 210, 2: 300, 3: 720, 4: 300, 5: 720, 6: 300, 7: 720,
    8: 300, 9: 720, 10: 300, 11: 720, 12: 210, 13: 210, 14: 210,
    15: 210, 16: 210, 17: 210, 18: 380, 19: 210,
}


@pytest.mark.benchmark(group="table3")
def test_table3_partitions_per_stage(benchmark, kmeans_runner, paper_comparisons):
    config = benchmark.pedantic(kmeans_runner.optimize, rounds=1, iterations=1)
    vanilla, chopper = paper_comparisons["kmeans"]

    chopper_p = [o.num_partitions for o in chopper.record.observations]
    vanilla_p = [o.num_partitions for o in vanilla.record.observations]

    lines = ["Table III — partitions per stage (KMeans, 21.8 GB)"]
    lines.append(f"{'stage':>5s} {'CHOPPER':>8s} {'Spark':>6s} {'paper CHOPPER':>14s}")
    for i, (cp, vp) in enumerate(zip(chopper_p, vanilla_p)):
        lines.append(f"{i:5d} {cp:8d} {vp:6d} {PAPER_ROW[i]:14d}")
    lines.append("")
    lines.append(f"config entries generated: {len(config)}")
    report("table3_partitions", lines)

    # Vanilla keeps the fixed default everywhere.
    assert set(vanilla_p) == {300}
    # CHOPPER varies the counts across stages...
    assert len(set(chopper_p)) >= 2
    # ...and moves away from the default where it matters.
    assert any(p != 300 for p in chopper_p)
    # Iterative stages 12-17 share one scheme: the shuffle-map stages all
    # agree, and the paired result stages all agree.
    assert len({chopper_p[i] for i in (12, 14, 16)}) == 1
    assert len({chopper_p[i] for i in (13, 15, 17)}) == 1

"""Ablation — Algorithm 3 (global) vs Algorithm 2 (per-stage) vs vanilla.

The design choice §III-C motivates: optimizing each stage independently
"misses the opportunities to reduce shuffle traffic because of the
dependencies between stages and RDDs". On the join-heavy SQL workload the
globally-optimized scheme must not lose to the naive per-stage scheme on
network traffic, and both must beat vanilla.
"""

import pytest

from repro.chopper import improvement

from conftest import report


def remote_bytes(outcome) -> float:
    return sum(s.remote_shuffle_read for s in outcome.ctx.stage_stats)


@pytest.mark.benchmark(group="ablation")
def test_ablation_global_vs_per_stage(benchmark, sql_runner):
    def run():
        vanilla = sql_runner.run_vanilla()
        per_stage = sql_runner.run_chopper(mode="per-stage")
        global_opt = sql_runner.run_chopper(mode="global")
        return vanilla, per_stage, global_opt

    vanilla, per_stage, global_opt = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    lines = ["Ablation — SQL: vanilla vs Algorithm 2 vs Algorithm 3"]
    lines.append(f"{'variant':>12s} {'time (min)':>11s} {'improvement':>12s}"
                 f" {'remote shuffle (GB)':>20s}")
    for label, outcome in (
        ("vanilla", vanilla), ("per-stage", per_stage), ("global", global_opt)
    ):
        lines.append(
            f"{label:>12s} {outcome.total_time / 60:11.2f}"
            f" {improvement(vanilla, outcome) * 100:11.1f}%"
            f" {remote_bytes(outcome) / 1e9:20.2f}"
        )
    report("ablation_global_vs_perstage", lines)

    # Both CHOPPER modes beat vanilla on time.
    assert improvement(vanilla, per_stage) > 0
    assert improvement(vanilla, global_opt) > 0
    # The global mode's whole point: co-partitioning cuts network traffic
    # below both vanilla and the per-stage scheme.
    assert remote_bytes(global_opt) < remote_bytes(vanilla)
    assert remote_bytes(global_opt) <= 1.05 * remote_bytes(per_stage)

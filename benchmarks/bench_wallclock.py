"""Wall-clock benchmark: serial vs parallel vs vectorized execution.

Times the same profiling sweep (the heaviest thing the repo does) under
each physical-performance configuration and verifies the speedups are
*free*: every configuration must produce byte-identical workload-DB
contents and identical chosen (partitioner, P) configs. Divergence is a
hard failure, not a footnote.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py          # full
    PYTHONPATH=src python benchmarks/bench_wallclock.py --tiny   # CI smoke

Writes ``BENCH_wallclock.json`` (see ``--out``). Thread/process configs
only pay off with real cores — ``cpu_count`` is recorded so a 1-core CI
box reporting ~1x for them reads as expected, not broken. The
vectorized-kernel speedup is core-count independent.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.chopper import ChopperRunner
from repro.chopper.workload_db import WorkloadDB
from repro.engine import EngineConf
from repro.workloads import (
    KMeansWorkload,
    ShuffleWordCountWorkload,
    WordCountWorkload,
)
from repro.workloads.datagen import clear_block_cache

_COLUMNAR = dict(
    vectorized_kernels=True, record_format="columnar", operator_fusion=True
)

# name -> (EngineConf overrides, process-pool jobs)
CONFIGS = [
    ("serial", dict(vectorized_kernels=False, physical_parallelism=1), 1),
    ("threads4", dict(vectorized_kernels=False, physical_parallelism=4), 1),
    ("procs4", dict(vectorized_kernels=False, physical_parallelism=1), 4),
    ("vectorized", dict(vectorized_kernels=True, physical_parallelism=1), 1),
    ("vectorized+threads4", dict(vectorized_kernels=True, physical_parallelism=4), 1),
    ("vectorized+procs4", dict(vectorized_kernels=True, physical_parallelism=1), 4),
    ("columnar", dict(physical_parallelism=1, **_COLUMNAR), 1),
    ("columnar+procs4", dict(physical_parallelism=1, **_COLUMNAR), 4),
    # Memory budget at 1/10th of the sweep's virtual input: most shuffle
    # blocks spill to disk and read back transparently; the DB must stay
    # byte-identical to the unbudgeted serial run.
    ("columnar+spill", dict(
        physical_parallelism=1, memory_budget_fraction=0.1, **_COLUMNAR
    ), 1),
]

FULL_SWEEPS = {
    "kmeans": dict(
        factory=lambda: KMeansWorkload(physical_records=100_000),
        parallelism=100, p_grid=[50, 100], kinds=["hash"], scales=[0.25],
    ),
    "wordcount": dict(
        factory=lambda: WordCountWorkload(physical_records=300_000),
        parallelism=100, p_grid=[50, 100], kinds=["hash", "range"],
        scales=[0.25],
    ),
    # Map-side combine off: every tokenized pair crosses the shuffle, so
    # this sweep is bucketing/fetch/fold bound — the columnar format's
    # home turf (and the fused filter/mapValues chain's).
    "wordcount_shuffle": dict(
        factory=lambda: ShuffleWordCountWorkload(physical_records=150_000),
        parallelism=100, p_grid=[50, 100], kinds=["hash"], scales=[0.25],
    ),
}

TINY_SWEEPS = {
    "kmeans": dict(
        factory=lambda: KMeansWorkload(physical_records=4_000),
        parallelism=16, p_grid=[8], kinds=["hash"], scales=[0.05],
    ),
    "wordcount": dict(
        factory=lambda: WordCountWorkload(physical_records=4_000),
        parallelism=16, p_grid=[8], kinds=["hash"], scales=[0.05],
    ),
    "wordcount_shuffle": dict(
        factory=lambda: ShuffleWordCountWorkload(physical_records=4_000),
        parallelism=16, p_grid=[8], kinds=["hash"], scales=[0.05],
    ),
}


def run_config(sweep: dict, conf_kwargs: dict, jobs: int):
    """One timed sweep; returns (seconds, db JSON bytes, chosen config)."""
    conf_kwargs = dict(conf_kwargs)
    budget_fraction = conf_kwargs.pop("memory_budget_fraction", None)
    workload = sweep["factory"]()
    if budget_fraction is not None:
        # Budget as a fraction of the sweep's largest virtual input — the
        # "input 10x bigger than memory" configuration.
        conf_kwargs["memory_budget"] = (
            workload.virtual_bytes(max(sweep["scales"])) * budget_fraction
        )
    conf = EngineConf(default_parallelism=sweep["parallelism"], **conf_kwargs)
    runner = ChopperRunner(workload, base_conf=conf, db=WorkloadDB())
    clear_block_cache()  # every config pays cold data generation
    start = time.perf_counter()
    runner.profile(
        p_grid=sweep["p_grid"], kinds=sweep["kinds"], scales=sweep["scales"],
        jobs=jobs,
    )
    elapsed = time.perf_counter() - start
    runner.train()
    chosen = runner.optimize(scale=max(sweep["scales"])).to_json()
    fd, path = tempfile.mkstemp(suffix=".json")
    os.close(fd)
    try:
        runner.db.save(path)
        db_bytes = Path(path).read_text()
    finally:
        os.unlink(path)
    return elapsed, db_bytes, chosen


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def bench_workload(name: str, sweep: dict, repeats: int = 1) -> dict:
    results: dict = {"configs": {}, "speedups": {}}
    rounds: dict = {config: [] for config, _, _ in CONFIGS}
    dbs: dict = {}
    chosens: dict = {}
    # Interleaved rounds: each round times every config back to back,
    # so slow drift on a shared box (frequency scaling, noisy
    # neighbors) hits all configs alike instead of biasing whichever
    # config's block of repeats landed in the slow stretch. Speedups
    # are the median of the *paired* per-round ratios — the estimator
    # that stays at 1.0x when two configs run identical code through
    # noise. Every repeat must also reproduce the identical DB.
    for _round in range(max(1, repeats)):
        for config_name, conf_kwargs, jobs in CONFIGS:
            elapsed, db_bytes, chosen = run_config(sweep, conf_kwargs, jobs)
            if config_name in dbs:
                assert dbs[config_name] == db_bytes and (
                    chosens[config_name] == chosen
                ), f"{name}/{config_name}: repeat diverged from its first run"
            else:
                dbs[config_name] = db_bytes
                chosens[config_name] = chosen
            rounds[config_name].append(elapsed)
            print(
                f"  {name:10s} {config_name:18s} {elapsed:8.2f}s"
                f"  (round {_round + 1}/{max(1, repeats)})",
                flush=True,
            )
    for config_name, _conf_kwargs, _jobs in CONFIGS:
        elapsed = min(rounds[config_name])
        speedup = _median(
            [s / c for s, c in zip(rounds["serial"], rounds[config_name])]
        )
        identical = (
            dbs[config_name] == dbs["serial"]
            and chosens[config_name] == chosens["serial"]
        )
        results["configs"][config_name] = {
            "seconds": round(elapsed, 3),
            "round_seconds": [round(s, 3) for s in rounds[config_name]],
            "identical_to_serial": identical,
        }
        results["speedups"][config_name] = round(speedup, 3)
        marker = "" if identical else "  << DIVERGED"
        print(
            f"  {name:10s} {config_name:18s} {elapsed:8.2f}s"
            f"  x{speedup:5.2f}{marker}",
            flush=True,
        )
    return results


# Zipf-skewed single runs, AQE off vs on. NOT part of the CONFIGS
# matrix: AQE feeds *adapted* partition counts into the workload DB by
# design, so its sweep DB is legitimately different from serial's and
# the byte-identity assertion above would misfire. What must hold
# instead: collected results bit-identical, and the *simulated* wall
# clock strictly lower — the static plan pays 2000 reduce-task
# overheads and the driver dispatch ramp on a shuffle whose measured
# sizes want a few hundred, which is exactly the runtime-coalesce win.
# The AQE byte target is CHOPPER-style tuned to the skewed shuffle's
# measured volume (~5 MB virtual): ~24 KiB lands the adapted count
# near the cluster's core count.
SKEWED = dict(
    parallelism=2000,
    skew=1.9,
    scale=0.25,
    aqe_target_partition_bytes=24.0 * 1024,
)


def bench_skewed(tiny: bool) -> dict:
    from repro.cluster import paper_cluster
    from repro.engine import AnalyticsContext

    records = 6_000 if tiny else 50_000
    parallelism = 200 if tiny else SKEWED["parallelism"]

    def one(aqe: bool):
        conf_kwargs = dict(default_parallelism=parallelism)
        if aqe:
            conf_kwargs.update(
                adaptive_execution=True,
                aqe_target_partition_bytes=SKEWED[
                    "aqe_target_partition_bytes"
                ],
            )
        ctx = AnalyticsContext(paper_cluster(), EngineConf(**conf_kwargs))
        clear_block_cache()
        try:
            start = time.perf_counter()
            value = WordCountWorkload(
                physical_records=records, skew=SKEWED["skew"]
            ).run(ctx, scale=SKEWED["scale"]).value
            real = time.perf_counter() - start
            return value, ctx.now, real
        finally:
            ctx.close()

    results: dict = {"configs": {}}
    value_off, sim_off, real_off = one(aqe=False)
    value_on, sim_on, real_on = one(aqe=True)
    identical = value_off == value_on
    assert identical, "skewed wordcount diverged with --aqe"
    assert sim_on < sim_off, (
        f"AQE did not beat the static plan: {sim_on:.2f} >= {sim_off:.2f}"
    )
    results["configs"]["skewed"] = {
        "seconds": round(real_off, 3),
        "simulated_seconds": round(sim_off, 3),
    }
    results["configs"]["skewed+aqe"] = {
        "seconds": round(real_on, 3),
        "simulated_seconds": round(sim_on, 3),
        "identical_to_skewed": identical,
    }
    results["simulated_speedup"] = round(sim_off / sim_on, 3)
    print(
        f"  skewed     static             {real_off:8.2f}s"
        f"  (simulated {sim_off:8.2f}s)"
    )
    print(
        f"  skewed     +aqe               {real_on:8.2f}s"
        f"  (simulated {sim_on:8.2f}s, "
        f"x{results['simulated_speedup']:.2f} simulated)"
    )
    return results


# Repeated-query runs: the same selective sql query cold then warm over
# a shared sqlite result cache, once per orders layout. Range-laid-out
# orders carry contiguous key intervals per partition, so the warm run's
# cached partition set prunes most of the scan — CHOPPER's range-vs-hash
# read-path trade-off as a wall-clock number. Hash-scrambled orders hit
# the same cache entry but every partition spans the full key range, so
# the warm run must prove *nothing* prunable and run the cold plan
# unchanged. Parallelism exceeds the paper cluster's 112 cores so
# pruned partitions translate into saved scheduling waves. Partitions
# are kept dense (~100 rows each): on near-empty partitions even
# hash-scrambled ids leave luckily-tight min/max ranges and zone maps
# prune "by accident", which would muddy the layout comparison.
REPEATED = dict(order_fraction=8, rows_per_partition=100)


def bench_repeated_query(tiny: bool) -> dict:
    from repro.cluster import paper_cluster
    from repro.engine import AnalyticsContext
    from repro.obs import MetricsRegistry
    from repro.workloads import SQLWorkload

    # Cheap enough (sub-second per run) to use the full configuration
    # in tiny mode too — smaller parallelism would drop below the
    # cluster's core count and erase the wave savings being measured.
    del tiny
    parallelism = 300
    records = parallelism * REPEATED["rows_per_partition"]

    def one(layout: str, cache_path: str):
        ctx = AnalyticsContext(
            paper_cluster(),
            EngineConf(
                default_parallelism=parallelism,
                result_cache="sqlite",
                result_cache_path=cache_path,
            ),
            metrics_registry=MetricsRegistry(),
        )
        clear_block_cache()
        try:
            start = time.perf_counter()
            value = SQLWorkload(
                virtual_gb=1.0,
                physical_records=records,
                max_order=records // REPEATED["order_fraction"],
                orders_layout=layout,
            ).run(ctx).value
            real = time.perf_counter() - start
            stats = {
                "seconds": round(real, 3),
                "simulated_seconds": round(ctx.now, 3),
                "cache_hits": ctx.query_cache.hits,
                "partitions_pruned": int(
                    ctx.obs.metrics.counter_total("scan.partitions_pruned")
                ),
            }
            return value, stats
        finally:
            ctx.close()

    results: dict = {"configs": {}}
    rows: dict = {}
    with tempfile.TemporaryDirectory() as tmp:
        for layout in ("range", "hash"):
            for phase in ("cold", "warm"):
                value, stats = one(layout, f"{tmp}/{layout}.db")
                rows[(layout, phase)] = value
                results["configs"][f"sql_{layout}_{phase}"] = stats
                print(
                    f"  repeated   sql_{layout}_{phase:5s}"
                    f"     {stats['seconds']:8.2f}s"
                    f"  (simulated {stats['simulated_seconds']:8.2f}s, "
                    f"{stats['partitions_pruned']} pruned)"
                )
    for layout in ("range", "hash"):
        assert rows[(layout, "warm")] == rows[(layout, "cold")], (
            f"warm {layout} run changed the query result"
        )
    rng_cold = results["configs"]["sql_range_cold"]
    rng_warm = results["configs"]["sql_range_warm"]
    hsh_cold = results["configs"]["sql_hash_cold"]
    hsh_warm = results["configs"]["sql_hash_warm"]
    assert rng_warm["cache_hits"] >= 1 and hsh_warm["cache_hits"] >= 1
    assert rng_cold["partitions_pruned"] == 0
    assert rng_warm["partitions_pruned"] > 0, "warm range run pruned nothing"
    assert hsh_warm["partitions_pruned"] == 0, (
        "hash-scrambled orders must prove nothing prunable"
    )
    assert hsh_warm["simulated_seconds"] == hsh_cold["simulated_seconds"], (
        "hash warm run must execute the cold plan unchanged"
    )
    speedup = (
        rng_cold["simulated_seconds"] / rng_warm["simulated_seconds"]
    )
    assert speedup >= 1.5, (
        f"warm range run only x{speedup:.2f} simulated (need >= 1.5)"
    )
    results["simulated_speedup_range"] = round(speedup, 3)
    print(
        f"  repeated   range warm         x{speedup:5.2f} simulated "
        f"({rng_warm['partitions_pruned']} partitions pruned, "
        f"hash x{hsh_cold['simulated_seconds']/hsh_warm['simulated_seconds']:.2f})"
    )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke: small sweeps, same identity checks")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="output JSON (default: repo root "
                             "BENCH_wallclock.json)")
    parser.add_argument("--repeats", type=int, default=1, metavar="N",
                        help="timed runs per config; the minimum is "
                             "reported (default 1)")
    args = parser.parse_args(argv)
    sweeps = TINY_SWEEPS if args.tiny else FULL_SWEEPS
    out_path = Path(
        args.out
        or Path(__file__).resolve().parent.parent / "BENCH_wallclock.json"
    )
    payload = {
        "mode": "tiny" if args.tiny else "full",
        "cpu_count": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity") else os.cpu_count(),
        "workloads": {},
    }
    print(f"wall-clock bench ({payload['mode']}, {payload['cpu_count']} cpus)")
    for name, sweep in sweeps.items():
        payload["workloads"][name] = bench_workload(
            name, sweep, repeats=max(1, args.repeats)
        )
    # Combined = all workloads back to back, the sweep a CHOPPER user
    # actually runs; per round, total serial seconds over total config
    # seconds, then the median of the paired per-round ratios.
    def combined(config: str) -> float:
        n_rounds = len(
            next(iter(payload["workloads"].values()))
            ["configs"]["serial"]["round_seconds"]
        )
        ratios = []
        for r in range(n_rounds):
            serial_total = sum(
                wl["configs"]["serial"]["round_seconds"][r]
                for wl in payload["workloads"].values()
            )
            config_total = sum(
                wl["configs"][config]["round_seconds"][r]
                for wl in payload["workloads"].values()
            )
            ratios.append(serial_total / config_total)
        return round(_median(ratios), 3)

    payload["combined_speedups"] = {
        config: combined(config) for config, _, _ in CONFIGS
    }
    best = max(
        speedup
        for config, speedup in payload["combined_speedups"].items()
        if config != "serial"
    )
    payload["best_speedup"] = best
    for config, speedup in payload["combined_speedups"].items():
        print(f"  combined   {config:18s} x{speedup:5.2f}")
    payload["skewed"] = bench_skewed(tiny=args.tiny)
    payload["repeated_query"] = bench_repeated_query(tiny=args.tiny)
    diverged = [
        (name, config)
        for name, wl in payload["workloads"].items()
        for config, result in wl["configs"].items()
        if not result["identical_to_serial"]
    ]
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"best speedup x{best:.2f} -> {out_path}")
    if diverged:
        print(f"FAIL: outputs diverged from serial: {diverged}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

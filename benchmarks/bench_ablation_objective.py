"""Ablation — the alpha/beta weighting of Eq. 3.

The paper sets alpha = beta = 0.5, "making them equally important". This
ablation applies Algorithm 1 to KMeans' shuffle-producing iteration stage
(the Lloyd ``assign -> reduceByKey`` map stage, whose combined shuffle
volume grows with the map partition count — Fig. 4) under three
weightings of the raw Eq. 3 and reports the chosen P:

* time-only (alpha=1): picks the throughput optimum (high P — finer tasks
  pack the heterogeneous cluster better);
* shuffle-only (beta=1): picks the minimum sampled P (volume is monotone
  in P);
* balanced 0.5/0.5 (the paper's default): lands in between.

A second column re-runs the full workload under each weighting, showing
the end-to-end effect is small for KMeans (its shuffles are kilobytes
against gigabytes of compute) — the observation behind this repo's
shuffle-significance floor (DESIGN.md).
"""

import pytest

from repro.chopper import ChopperRunner, CostWeights, get_stage_par
from repro.chopper.optimizer import get_stage_input
from repro.workloads import KMeansWorkload

from conftest import report


def build_runner() -> ChopperRunner:
    # A larger physical sample than the shared fixture: the map-side
    # combined shuffle volume must keep growing with P (not saturate on
    # exhausted physical records) for the beta term to have a gradient.
    runner = ChopperRunner(
        KMeansWorkload(virtual_gb=21.8, physical_records=24_000)
    )
    runner.profile(p_grid=(100, 300, 500, 800, 1200), scales=(1.0,))
    runner.train()
    return runner


WEIGHTINGS = (
    ("time-only", 1.0, 0.0),
    ("balanced", 0.5, 0.5),
    ("shuffle-only", 0.0, 1.0),
)


@pytest.mark.benchmark(group="ablation")
def test_ablation_objective_weights(benchmark):
    def run():
        runner = build_runner()
        dag = runner.db.dag("kmeans")
        # The Lloyd map stage: shuffle_map kind, repeated 3x (stages 12/14/16).
        assign = next(
            s for s in dag.stages if s.kind == "shuffle_map" and s.repeats == 3
        )
        d = get_stage_input(runner.db, "kmeans", assign.signature, 21.8e9)
        stage_choice = {}
        run_time = {}
        original = runner.weights
        try:
            for label, alpha, beta in WEIGHTINGS:
                runner.weights = CostWeights(
                    alpha=alpha, beta=beta,
                    default_parallelism=original.default_parallelism,
                    shuffle_significance=1e-7,  # ~the paper's raw Eq. 3
                )
                scheme, _cost = get_stage_par(
                    runner.db, "kmeans", assign.signature, d, runner.weights
                )
                stage_choice[label] = scheme.num_partitions
                outcome = runner.run_chopper(config=runner.optimize())
                run_time[label] = outcome.total_time
        finally:
            runner.weights = original
        return stage_choice, run_time

    stage_choice, run_time = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Ablation — Eq. 3 weights on KMeans' shuffle-producing map stage"]
    lines.append(
        f"{'objective':>13s} {'stage P (Alg.1)':>16s} {'workload time (min)':>20s}"
    )
    for label, _a, _b in WEIGHTINGS:
        lines.append(
            f"{label:>13s} {stage_choice[label]:16d} {run_time[label] / 60:20.2f}"
        )
    report("ablation_objective", lines)

    # The shuffle term pulls the stage's P down; time pushes it up.
    assert stage_choice["shuffle-only"] < stage_choice["time-only"]
    assert (
        stage_choice["shuffle-only"]
        <= stage_choice["balanced"]
        <= stage_choice["time-only"]
    )
    # End to end, no weighting is catastrophic on this workload.
    best = min(run_time.values())
    assert max(run_time.values()) <= 1.35 * best

"""Extension — model transfer across cluster configurations.

§VI: "Our current implementation of CHOPPER has to re-train its models
whenever the available resources are changed. In future, we plan to
explore the per-stage performance models that can work across different
resource configurations, i.e., clusters."

This bench quantifies that limitation: KMeans models/configs trained on
the paper's 6-node heterogeneous testbed are applied, unchanged, to a
different cluster (8 homogeneous 16-core workers), and compared against
(a) the new cluster's vanilla default and (b) a config re-profiled on
the new cluster. Expectation: the stale config transfers imperfectly —
re-training recovers additional time — which is exactly why the paper
calls for cross-cluster models.
"""

import pytest
from dataclasses import replace

from repro.chopper import ChopperAdvisor, ChopperRunner
from repro.chopper.stats import StatisticsCollector
from repro.cluster import uniform_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.workloads import KMeansWorkload

from conftest import P_GRID, report


def other_cluster():
    return uniform_cluster(n_workers=8, cores=16)


def run_on(cluster_factory, workload, advisor, copartition, conf):
    ctx = AnalyticsContext(
        cluster_factory(), replace(conf, copartition_scheduling=copartition)
    )
    if advisor is not None:
        ctx.set_advisor(advisor)
    collector = StatisticsCollector(workload.name, workload.virtual_bytes())
    with collector.attached(ctx):
        workload.run(ctx)
    return ctx.now


@pytest.mark.benchmark(group="extension")
def test_ext_model_transfer(benchmark, kmeans_runner):
    def run():
        workload = KMeansWorkload(virtual_gb=21.8, physical_records=4000)
        conf = EngineConf(default_parallelism=300)

        # Config trained on the paper cluster, applied to the new one.
        stale_config = kmeans_runner.optimize()
        # Config re-profiled on the new cluster.
        fresh_runner = ChopperRunner(
            workload, cluster_factory=other_cluster, base_conf=conf
        )
        fresh_runner.profile(p_grid=P_GRID, scales=(1.0,))
        fresh_runner.train()
        fresh_config = fresh_runner.optimize()

        return {
            "vanilla": run_on(other_cluster, workload, None, False, conf),
            "stale config": run_on(
                other_cluster, workload, ChopperAdvisor(stale_config), True, conf
            ),
            "re-profiled": run_on(
                other_cluster, workload, ChopperAdvisor(fresh_config), True, conf
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Extension — KMeans config transfer to a different cluster"]
    lines.append("(trained on 3x32@10Gbps+2x8@1Gbps, applied to 8x16 uniform)")
    for label, total in results.items():
        lines.append(f"  {label:>13s}: {total / 60:7.2f} min")
    report("ext_model_transfer", lines)

    # Re-profiling on the target cluster is at least as good as carrying
    # the stale config over — the retraining need the paper states.
    assert results["re-profiled"] <= 1.02 * results["stale config"]
    # And the freshly-profiled CHOPPER beats the new cluster's vanilla.
    assert results["re-profiled"] < results["vanilla"]

"""Extension — speculative execution composed with CHOPPER.

Speculative execution (Spark's classic straggler mitigation) and
CHOPPER's partition tuning attack overlapping problems: both shrink the
tail of a stage. This bench measures the 2x2 on KMeans with amplified
task jitter (a noisy cluster) to answer the natural question: does
partition tuning still pay once speculation is on?
"""

import pytest
from dataclasses import replace

from repro.chopper import ChopperAdvisor
from repro.chopper.stats import StatisticsCollector
from repro.cluster import paper_cluster
from repro.engine import AnalyticsContext

from conftest import report


def run_variant(runner, config, speculation: bool, chopper: bool):
    workload = runner.workload
    cost = replace(runner.base_conf.cost, jitter_sigma=0.35)  # noisy cluster
    conf = replace(
        runner.base_conf,
        cost=cost,
        speculation=speculation,
        copartition_scheduling=chopper,
    )
    ctx = AnalyticsContext(paper_cluster(), conf)
    if chopper:
        ctx.set_advisor(ChopperAdvisor(config))
    collector = StatisticsCollector(workload.name, workload.virtual_bytes())
    with collector.attached(ctx):
        workload.run(ctx)
    return ctx.now, ctx.task_scheduler.speculative_launches


@pytest.mark.benchmark(group="extension")
def test_ext_speculation_interplay(benchmark, kmeans_runner):
    def run():
        config = kmeans_runner.optimize()
        out = {}
        for speculation in (False, True):
            for chopper in (False, True):
                label = (
                    ("chopper" if chopper else "vanilla")
                    + ("+spec" if speculation else "")
                )
                out[label] = run_variant(
                    kmeans_runner, config, speculation, chopper
                )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Extension — speculation x CHOPPER on a noisy cluster (KMeans)"]
    lines.append(f"{'variant':>14s} {'time (min)':>11s} {'spec launches':>14s}")
    for label, (total, launches) in results.items():
        lines.append(f"{label:>14s} {total / 60:11.2f} {launches:14d}")
    report("ext_speculation", lines)

    # Speculation helps the vanilla baseline on a noisy cluster...
    assert results["vanilla+spec"][0] <= results["vanilla"][0]
    # ...and CHOPPER still wins on top of it: the mechanisms compose.
    assert results["chopper+spec"][0] < results["vanilla+spec"][0]
    # Speculation actually fired somewhere.
    assert any(launches > 0 for _t, launches in results.values())

"""Fig. 3 — KMeans stage-0 execution time under different partition counts.

Paper claim (§II-B): stage-0 time changes with the number of partitions,
with "the worst performance when the number of partitions is set to 100".
"""

import pytest

from repro.chopper import ProfilingAdvisor, StatisticsCollector
from repro.cluster import paper_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.workloads import KMeansWorkload

from conftest import report

PARTITIONS = (100, 200, 300, 400, 500)


def run_stage0_sweep():
    times = {}
    for p in PARTITIONS:
        workload = KMeansWorkload(virtual_gb=7.3, physical_records=4000)
        ctx = AnalyticsContext(paper_cluster(), EngineConf(default_parallelism=300))
        ctx.set_advisor(ProfilingAdvisor("hash", p))
        collector = StatisticsCollector(workload.name, workload.virtual_bytes())
        with collector.attached(ctx):
            workload.run(ctx)
        times[p] = collector.record.observations[0].duration
    return times


@pytest.mark.benchmark(group="fig03")
def test_fig03_stage0_vs_partitions(benchmark):
    times = benchmark.pedantic(run_stage0_sweep, rounds=1, iterations=1)

    lines = ["Fig. 3 — KMeans stage-0 execution time vs partitions (7.3 GB)"]
    lines.append("paper reference: worst ~230 s at P=100, best ~100 s near P=300")
    for p in PARTITIONS:
        lines.append(f"  P={p:4d}: {times[p]:7.1f} s")
    report("fig03_stage0", lines)

    # Paper claim: P=100 is the worst of the sweep.
    assert times[100] == max(times.values())
    # And the improvement from 100 to the sweet spot is substantial
    # (paper: ~2.3x; our simulator's low-P wall is gentler at 7.3 GB).
    assert times[100] > 1.2 * min(times.values())

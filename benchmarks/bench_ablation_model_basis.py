"""Ablation — the Eq. 1 model basis.

§III-B claims the cube+square+linear+sqrt basis "is simple and
computationally efficient, yet powerful enough to capture applications
with different characteristics". This ablation fits the full basis and
two reduced bases (D,P linear-only and P-terms-only) against the profiled
KMeans stage times and compares the median absolute percentage error —
the measure matching the relative-error objective the models are fitted
under (see repro/chopper/model.py).
"""

import numpy as np
import pytest

from repro.chopper.model import StagePerfModel, _ridge_lstsq, design_matrix

from conftest import report


def restricted_mape(observations, keep):
    """MAPE of a restricted fit (only the ``keep`` basis columns).

    Fitted the same way the full model is — in log space.
    """
    d = np.array([max(o.input_bytes, 1.0) for o in observations])
    p = np.array([float(o.num_partitions) for o in observations])
    t = np.array([o.duration for o in observations])
    X = design_matrix(d, p, float(d.max()), float(p.max()))[:, keep]
    coef = _ridge_lstsq(X, np.log(np.maximum(t, 1e-3)))
    pred = np.exp(np.minimum(X @ coef, 40.0))
    return float(np.median(np.abs(t - pred) / np.maximum(t, 1e-9)))


@pytest.mark.benchmark(group="ablation")
def test_ablation_model_basis(benchmark, kmeans_runner):
    def run():
        db = kmeans_runner.db
        dag = db.dag("kmeans")
        rows = []
        for stage in dag.stages:
            obs = [
                o for o in db.observations("kmeans", signature=stage.signature)
                if o.partitioner_kind in ("hash", None)
            ]
            if len(obs) < 8:
                continue
            full = StagePerfModel.fit(obs).mape_time(obs)
            linear_only = restricted_mape(obs, keep=[2, 6, 8])   # D, P, 1
            p_only = restricted_mape(obs, keep=[4, 5, 6, 7, 8])  # P terms, 1
            rows.append((stage.signature[:8], len(obs), full, linear_only, p_only))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Ablation — Eq. 1 basis quality (median abs. % error of time fits)"]
    lines.append(f"{'stage':>9s} {'n':>4s} {'full basis':>11s}"
                 f" {'D,P linear':>11s} {'P-only':>8s}")
    for sig, n, full, linear, p_only in rows:
        lines.append(
            f"{sig:>9s} {n:4d} {full * 100:10.1f}%"
            f" {linear * 100:10.1f}% {p_only * 100:7.1f}%"
        )
    report("ablation_model_basis", lines)

    assert rows, "no stages with enough observations"
    full_scores = [r[2] for r in rows]
    linear_scores = [r[3] for r in rows]
    p_only_scores = [r[4] for r in rows]
    # The paper's full basis predicts stage times within ~15% typically.
    assert np.median(full_scores) < 0.15
    # And beats the reduced bases on average error.
    assert np.mean(full_scores) <= np.mean(linear_scores) + 1e-9
    assert np.mean(full_scores) <= np.mean(p_only_scores) + 1e-9
